package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fortress/internal/attack"
	"fortress/internal/faults"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/replica"
	"fortress/internal/replica/store"
	"fortress/internal/service"
	"fortress/internal/sim"
	"fortress/internal/xrand"
)

// FaultSweepConfig tunes the degraded-network campaign sweep: a grid of
// (backend × fault-schedule preset × drop rate × proxy count × persistence
// × schedule jitter × workload preset × read fraction × read leases)
// cells, each evaluated by a series of campaign repetitions
// (attack.CampaignSeries) with a fault injector replaying the preset
// against every repetition's own deployment, and with the cell's
// measurement workload (availability + virtual latency percentiles) on.
// Zero-valued fields select defaults, except Seed (zero is itself a valid
// seed) and OmegaDirect (zero means an indirect-only sweep), mirroring
// LiveCampaignConfig.
type FaultSweepConfig struct {
	// Chi is the randomization key-space size χ; small by design, as in the
	// live-campaign sweep. Default 24.
	Chi uint64
	// Reps is the number of campaign repetitions per cell. Default 4.
	Reps int
	// Seed makes the sweep reproducible; zero is not rewritten.
	Seed uint64
	// Workers bounds total concurrency, split between the cell fan-out and
	// each cell's repetition series; it never affects results.
	Workers int
	// MaxSteps is the per-repetition campaign horizon — also the horizon the
	// presets scale their schedules to. Default 24.
	MaxSteps uint64
	// Rerandomize selects PO (true) or SO (false) for every cell.
	Rerandomize bool
	// OmegaDirect is the direct probe budget per step. Zero is preserved
	// (indirect-only), as in LiveCampaignConfig.
	OmegaDirect uint64
	// OmegaIndirect is the paced indirect budget per step. Default 1.
	OmegaIndirect uint64
	// Servers is the server count n_s — per replica group on sharded
	// cells. Default 3.
	Servers int
	// Groups is the replica-group grid: each value deploys that many
	// independent replica groups (fortress.Config.Groups) behind the
	// proxy tier, with the keyspace consistent-hash-partitioned across
	// them. Sharded cells probe every group each step and report
	// per-shard availability next to the aggregate. Default {1}.
	Groups []int
	// Backends is the replication-engine grid, by name ("pb", "smr") —
	// the same schedules replayed against both server tiers turn every
	// sweep into a PB-vs-SMR availability comparison. Default {"pb"}.
	Backends []string
	// Presets is the fault-schedule grid, by preset name (faults.Presets).
	// Default {"none", "rolling-partition", "quorum-partition",
	// "proxy-outage"} — the pristine baseline plus the three deterministic
	// degraded scenarios.
	Presets []string
	// DropRates is the lossy-link grid: each rate is installed at step 0 by
	// the injector on top of the preset's schedule. Default {0}. Drop
	// sampling draws from per-directed-pair streams seeded off each
	// repetition's own generator, so positive-rate cells reproduce bitwise
	// at any Workers value, like everything else.
	DropRates []float64
	// ProxyCounts is the n_p grid. Default {3}.
	ProxyCounts []int
	// CheckpointEvery and UpdateWindow tune the server tier's resync
	// machinery (the PB delta stream's checkpoint cadence, and the
	// PB-retransmission/SMR-catch-up history bound). Zero selects the
	// engine defaults; they are passed through to every cell's deployment
	// untouched.
	CheckpointEvery int
	UpdateWindow    int
	// Persist is the persistence grid: "mem" (the zero-allocation
	// in-memory default — a power failure loses all replica state) and/or
	// "wal" (a CRC-framed write-ahead log plus snapshot per server,
	// recovered from disk on restart). Default {"mem"}.
	Persist []string
	// FsyncEvery is the WAL sync-cadence grid: every n-th append syncs, so
	// a power failure loses at most n-1 records. Only "wal" cells fan out
	// over it; "mem" cells ignore it. Values <= 0 select the store default
	// (sync every append). Default {1}.
	FsyncEvery []int
	// Jitters is the schedule-jitter grid: each value is the maximum
	// forward delay, in steps, applied per schedule event (faults.Jitter),
	// drawn from each repetition's own pre-split stream so jittered cells
	// keep the bit-identical-at-any-Workers contract. Default {0}.
	Jitters []uint64
	// WorkloadAxes is the measurement-workload grid shared with the live
	// campaign sweep: named workload presets × read-fraction overrides ×
	// read leases. Every fault-sweep cell measures, so the empty axes
	// default to the "closed" preset at its own (all-read) mix — the
	// historical health probe.
	WorkloadAxes
	// PersistRoot, when non-empty, roots every "wal" cell's store
	// directories (one per cell, repetition and server) and is left in
	// place for inspection. When empty, a temporary root is created and
	// removed when the sweep returns.
	PersistRoot string
	// CollectMetrics attaches a private metrics registry to every campaign
	// repetition and merges the per-repetition snapshots into each row's
	// Metrics field (repetition order; trace rings prefixed "repN/").
	// Metrics are observational only — collection never changes results —
	// and the merged Counters section is deterministic at any Workers value.
	CollectMetrics bool
}

// DefaultFaultSweepConfig is the grid the CLI and benchmarks use.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{
		Chi:           24,
		Reps:          4,
		Seed:          1,
		MaxSteps:      24,
		OmegaDirect:   2,
		OmegaIndirect: 1,
		Servers:       3,
		Groups:        []int{1},
		Backends:      []string{"pb"},
		Presets:       []string{"none", "rolling-partition", "quorum-partition", "proxy-outage"},
		DropRates:     []float64{0},
		ProxyCounts:   []int{3},
		Persist:       []string{"mem"},
		FsyncEvery:    []int{1},
		Jitters:       []uint64{0},
		WorkloadAxes: WorkloadAxes{
			Workloads: []string{"closed"},
			Leases:    []bool{false},
		},
	}
}

// withDefaults fills zero-valued fields from DefaultFaultSweepConfig, with
// the same Seed/OmegaDirect exemptions as the live-campaign sweep.
func (c FaultSweepConfig) withDefaults() FaultSweepConfig {
	d := DefaultFaultSweepConfig()
	if c.Chi == 0 {
		c.Chi = d.Chi
	}
	if c.Reps == 0 {
		c.Reps = d.Reps
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = d.MaxSteps
	}
	if c.OmegaIndirect == 0 {
		c.OmegaIndirect = d.OmegaIndirect
	}
	if c.Servers == 0 {
		c.Servers = d.Servers
	}
	if len(c.Groups) == 0 {
		c.Groups = d.Groups
	}
	if len(c.Backends) == 0 {
		c.Backends = d.Backends
	}
	if len(c.Presets) == 0 {
		c.Presets = d.Presets
	}
	if len(c.DropRates) == 0 {
		c.DropRates = d.DropRates
	}
	if len(c.ProxyCounts) == 0 {
		c.ProxyCounts = d.ProxyCounts
	}
	if len(c.Persist) == 0 {
		c.Persist = d.Persist
	}
	if len(c.FsyncEvery) == 0 {
		c.FsyncEvery = d.FsyncEvery
	}
	if len(c.Jitters) == 0 {
		c.Jitters = d.Jitters
	}
	// Workloads/ReadFracs/Leases stay as given: WorkloadAxes.expand owns
	// their defaults, shared with the live-campaign sweep.
	return c
}

// FaultSweepRow is one sweep cell: a (backend, preset, drop rate, proxy
// count) point with its aggregated campaign-series outcome.
type FaultSweepRow struct {
	Backend  string
	Preset   string
	DropRate float64
	Proxies  int
	// Groups is the cell's replica-group count.
	Groups int
	// Persist is the cell's persistence mode ("mem" or "wal").
	Persist string
	// FsyncEvery is the WAL sync cadence; 0 for "mem" cells.
	FsyncEvery int
	// Jitter is the cell's maximum per-event schedule delay, in steps.
	Jitter uint64
	// Workload names the cell's measurement-workload preset.
	Workload string
	// ReadFrac is the cell's effective workload read share; Leases reports
	// whether the cell's server tier ran with read leases on.
	ReadFrac float64
	Leases   bool
	Reps     uint64
	// Compromised counts repetitions that fell within the horizon.
	Compromised uint64
	// MeanLifetime and CI95 summarize the empirical lifetimes.
	MeanLifetime float64
	CI95         float64
	// Availability and AvailabilityCI95 summarize the per-repetition
	// fraction of steps whose health check got a doubly-signed answer —
	// on sharded cells, the fraction of steps EVERY group answered.
	Availability     float64
	AvailabilityCI95 float64
	// ShardAvailability is the mean per-replica-group availability,
	// indexed by group; nil on single-group cells. A fault that cuts one
	// group shows up here as that shard's entry collapsing while the
	// others hold at 1.
	ShardAvailability []float64
	// P50/P99/P999 are the cell's virtual-latency percentiles in
	// milliseconds over the merged repetition histograms (service-time
	// sample when the owning shard answered its probe, the workload
	// deadline when it did not); NaN when the cell observed no requests.
	P50  float64
	P99  float64
	P999 float64
	// ShardP99 is the per-replica-group p99 latency in milliseconds,
	// indexed by group; nil on single-group cells. The shard-cut preset's
	// signature: the islanded shard's p99 pinned at the deadline while the
	// untouched shards stay flat.
	ShardP99 []float64
	// Routes histograms how the compromised repetitions fell.
	Routes map[string]uint64
	// Metrics is the cell's merged per-repetition metrics snapshot; nil
	// unless the sweep ran with CollectMetrics.
	Metrics *metrics.Snapshot
}

// faultSweepTimings are the per-cell deployment timings. ServerTimeout is
// deliberately shorter than HeartbeatTimeout so that a request parked on a
// backup behind a severed primary fails at the proxy before any failover
// timer can fire — unavailability under a quorum cut is then a pure function
// of the schedule, not of scheduler load.
const (
	faultSweepHeartbeatInterval = 10 * time.Millisecond
	faultSweepHeartbeatTimeout  = 250 * time.Millisecond
	faultSweepServerTimeout     = 150 * time.Millisecond
	faultSweepHealthTimeout     = 600 * time.Millisecond
	faultSweepProbeTimeout      = 2 * time.Second
)

// FaultSweep runs the degraded-network sweep: every grid cell drives Reps
// full de-randomization campaigns, each against its own FORTRESS deployment
// on its own network, with a fault injector replaying the cell's schedule
// preset (plus the cell's drop rate at step 0) against that deployment's
// campaign-step clock. Rows come back in grid order (backend, then preset,
// then drop rate, then proxy count, then persistence mode with its fsync
// cadence, then schedule jitter, then workload preset, then read fraction,
// then leases).
//
// Determinism matches the other sweeps: per-cell streams are pre-split in
// grid order, per-repetition streams (injector included) in repetition
// order, and drop sampling runs on per-directed-pair streams, so cells
// reproduce bit-identically from (Seed, Reps) alone at any Workers value.
func FaultSweep(cfg FaultSweepConfig) ([]FaultSweepRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Reps < 0 {
		return nil, errors.New("experiments: fault sweep needs a positive repetition count")
	}
	space, err := keyspace.NewSpace(cfg.Chi)
	if err != nil {
		return nil, err
	}

	wlCells, err := cfg.WorkloadAxes.expand(false)
	if err != nil {
		return nil, err
	}
	type cell struct {
		backend replica.Backend
		preset  faults.Preset
		drop    float64
		proxies int
		groups  int
		persist string
		fsync   int
		jitter  uint64
		wl      workloadCell
	}
	var cells []cell
	for _, backendName := range cfg.Backends {
		backend, err := replica.ParseBackend(backendName)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, name := range cfg.Presets {
			p, err := faults.PresetByName(name)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			for _, drop := range cfg.DropRates {
				for _, np := range cfg.ProxyCounts {
					for _, groups := range cfg.Groups {
						if groups < 1 {
							return nil, fmt.Errorf("experiments: replica-group count must be at least 1, got %d", groups)
						}
						for _, persist := range cfg.Persist {
							// The fsync axis only distinguishes "wal" cells;
							// "mem" collapses it so the grid carries no
							// duplicate in-memory rows.
							fsyncs := cfg.FsyncEvery
							switch persist {
							case "mem":
								fsyncs = []int{0}
							case "wal":
							default:
								return nil, fmt.Errorf("experiments: unknown persistence mode %q (want \"mem\" or \"wal\")", persist)
							}
							for _, fsync := range fsyncs {
								for _, jitter := range cfg.Jitters {
									for _, wl := range wlCells {
										cells = append(cells, cell{backend, p, drop, np, groups, persist, fsync, jitter, wl})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	persistRoot := cfg.PersistRoot
	for _, persist := range cfg.Persist {
		if persist == "wal" && persistRoot == "" {
			root, err := os.MkdirTemp("", "fortress-faultsweep-")
			if err != nil {
				return nil, fmt.Errorf("experiments: fault sweep persist root: %w", err)
			}
			defer os.RemoveAll(root)
			persistRoot = root
			break
		}
	}
	rng := xrand.New(cfg.Seed + 7)
	rngs := sim.SplitRNGs(rng, len(cells))
	inner := innerWorkers(cfg.Workers, len(cells))
	rows := make([]FaultSweepRow, len(cells))
	err = sim.ForEach(len(cells), cfg.Workers, func(i int) error {
		c := cells[i]
		sched := c.preset.Build(faults.Shape{Groups: c.groups, Servers: cfg.Servers, Proxies: c.proxies}, cfg.MaxSteps)
		if c.drop > 0 {
			// The drop rate rides the injector so each repetition's private
			// network gets it, from that repetition's own stream.
			sched = faults.Schedule{Events: append(
				[]faults.Event{faults.DropRate(0, c.drop)}, sched.Events...)}
		}
		tmpl := fortress.Config{
			Servers:           cfg.Servers,
			Proxies:           c.proxies,
			Groups:            c.groups,
			Backend:           c.backend,
			ServiceFactory:    func() service.Service { return service.NewKV() },
			HeartbeatInterval: faultSweepHeartbeatInterval,
			HeartbeatTimeout:  faultSweepHeartbeatTimeout,
			ServerTimeout:     faultSweepServerTimeout,
			CheckpointEvery:   cfg.CheckpointEvery,
			UpdateWindow:      cfg.UpdateWindow,
			Leases:            c.wl.leases,
		}
		var regs []*metrics.Registry
		if cfg.CollectMetrics {
			regs = seriesRegistries(cfg.Reps)
		}
		var customize func(rep int, fc *fortress.Config)
		if c.persist == "wal" || regs != nil {
			cellDir := filepath.Join(persistRoot, fmt.Sprintf("cell%03d", i))
			persist, fsync := c.persist, c.fsync
			customize = func(rep int, fc *fortress.Config) {
				var reg *metrics.Registry
				if regs != nil {
					reg = regs[rep]
					fc.Metrics = reg
				}
				if persist == "wal" {
					fc.StoreFactory = func(server int) (store.Store, error) {
						return store.Open(store.WALConfig{
							Dir:       filepath.Join(cellDir, fmt.Sprintf("r%03d", rep), fmt.Sprintf("s%d", server)),
							SyncEvery: fsync,
							Metrics:   reg,
							Node:      fortress.ServerAddr(server),
						})
					}
				}
			}
		}
		series, err := attack.CampaignSeries(tmpl, space, attack.SeriesConfig{
			Campaign: attack.CampaignConfig{
				OmegaDirect:         cfg.OmegaDirect,
				OmegaIndirect:       cfg.OmegaIndirect,
				MaxSteps:            cfg.MaxSteps,
				Rerandomize:         cfg.Rerandomize,
				MeasureAvailability: true,
				HealthTimeout:       faultSweepHealthTimeout,
				ProbeTimeout:        faultSweepProbeTimeout,
				Workload:            c.wl.spec,
			},
			Workers:   inner,
			Customize: customize,
			MakeInjector: func(rep int, sys *fortress.System, rng *xrand.RNG) attack.StepInjector {
				repSched := sched
				if c.jitter > 0 {
					// Per-repetition jitter from the repetition's own
					// stream: every repetition replays a slightly different
					// realization of the cell's schedule, still bitwise
					// reproducible at any Workers value.
					repSched = faults.Jitter(sched, c.jitter, rng)
				}
				inj, err := faults.NewInjector(repSched, sys, rng)
				if err != nil {
					// Unreachable: construction fails only on a nil system or
					// a drop-rate event without an rng, and both are supplied.
					panic(fmt.Sprintf("experiments: fault injector: %v", err))
				}
				return inj
			},
		}, cfg.Reps, rngs[i])
		if err != nil {
			return fmt.Errorf("experiments: cell (backend=%s preset=%s drop=%g np=%d groups=%d persist=%s jitter=%d workload=%s readfrac=%g leases=%t): %w",
				c.backend, c.preset.Name, c.drop, c.proxies, c.groups, c.persist, c.jitter, c.wl.name, c.wl.rf, c.wl.leases, err)
		}
		var shardAvail []float64
		for _, s := range series.ShardAvailability {
			shardAvail = append(shardAvail, s.Mean)
		}
		p50, p99, p999 := latencyColumns(series.Latency)
		rows[i] = FaultSweepRow{
			Backend:           c.backend.String(),
			Preset:            c.preset.Name,
			DropRate:          c.drop,
			Proxies:           c.proxies,
			Groups:            c.groups,
			Persist:           c.persist,
			FsyncEvery:        c.fsync,
			Jitter:            c.jitter,
			Workload:          c.wl.name,
			ReadFrac:          c.wl.rf,
			Leases:            c.wl.leases,
			Reps:              series.Reps,
			Compromised:       series.Compromised,
			MeanLifetime:      series.Lifetime.Mean,
			CI95:              series.Lifetime.CI95,
			Availability:      series.Availability.Mean,
			AvailabilityCI95:  series.Availability.CI95,
			ShardAvailability: shardAvail,
			P50:               p50,
			P99:               p99,
			P999:              p999,
			ShardP99:          shardP99s(series.ShardLatency),
			Routes:            series.Routes,
		}
		if regs != nil {
			snap := mergeRegistries(regs)
			rows[i].Metrics = &snap
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFaultSweep renders sweep rows as an aligned text table. The p50/
// p99/p999 columns are virtual-latency percentiles in milliseconds;
// shardp99 breaks p99 down per replica group on sharded cells.
func FormatFaultSweep(rows []FaultSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-18s %-6s %-8s %-7s %-8s %-6s %-7s %-15s %-9s %-7s %-6s %-12s %-14s %-10s %-13s %-7s %-7s %-7s %-18s %-18s %s\n",
		"backend", "preset", "drop", "proxies", "groups", "persist", "fsync", "jitter", "workload", "readfrac", "leases", "reps", "compromised", "meanLifetime", "ci95", "availability", "p50ms", "p99ms", "p999ms", "shards", "shardp99", "routes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-18s %-6g %-8d %-7d %-8s %-6d %-7d %-15s %-9g %-7t %-6d %-12d %-14.6g %-10.3g %-13.4g %-7s %-7s %-7s %-18s %-18s %s\n",
			r.Backend, r.Preset, r.DropRate, r.Proxies, r.Groups, r.Persist, r.FsyncEvery, r.Jitter, r.Workload, r.ReadFrac, r.Leases,
			r.Reps, r.Compromised, r.MeanLifetime, r.CI95, r.Availability,
			formatOptFloat(r.P50), formatOptFloat(r.P99), formatOptFloat(r.P999),
			formatShardAvail(r.ShardAvailability), formatOptFloats(r.ShardP99), formatRoutes(r.Routes))
	}
	return b.String()
}
