package experiments

import (
	"math"
	"testing"

	"fortress/internal/model"
)

// TestLiveSMRMatchesAnalyticFig1Point cross-checks the executable stack
// against the analytic model at one fig1 coordinate: an SMR-backed live
// deployment probed indirectly once per step (ω_direct = 0, pacing 1,
// detector off) is exactly the S1 single-tier SO system at α = 1/χ — the
// server tier shares one randomization key, and with no direct budget the
// proxy tier never falls. The live mean lifetime must land within the
// series' own confidence band of the closed-form EL.
func TestLiveSMRMatchesAnalyticFig1Point(t *testing.T) {
	const chi = 16
	cfg := LiveCampaignConfig{
		Chi:         chi,
		Reps:        32,
		Seed:        11,
		MaxSteps:    3 * chi,
		OmegaDirect: 0,
		Backends:    []string{"smr"},
		ProxyCounts: []int{3},
		Detectors:   []bool{false},
		Pacings:     []uint64{1},
	}
	rows, err := LiveCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	row := rows[0]
	// SO probing sweeps the keyspace without repetition, so every
	// repetition must fall within χ steps — a horizon of 3χ leaves no
	// censored lifetimes to bias the mean.
	if row.Compromised != uint64(cfg.Reps) {
		t.Fatalf("only %d/%d repetitions compromised within %d steps", row.Compromised, cfg.Reps, cfg.MaxSteps)
	}
	p := model.Params{
		Chi:               chi,
		Alpha:             1.0 / chi, // ω = α·χ = 1 probe per step
		Kappa:             0,
		LaunchPadFraction: 0,
		SMRReplicas:       4,
		SMRTolerance:      1,
		PBReplicas:        3,
		Proxies:           3,
	}
	want, err := model.S1SO{P: p}.AnalyticEL()
	if err != nil {
		t.Fatal(err)
	}
	tol := 3*row.CI95 + 1
	if diff := math.Abs(row.MeanLifetime - want); diff > tol {
		t.Errorf("live SMR mean lifetime %g vs analytic EL %g: |diff| %g exceeds tolerance %g (ci95 %g)",
			row.MeanLifetime, want, diff, tol, row.CI95)
	}
}
