package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"fortress/internal/attack"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/replica"
	"fortress/internal/service"
	"fortress/internal/sim"
	"fortress/internal/xrand"
)

// LiveCampaignConfig tunes the live-campaign sweep: a grid of
// (backend × proxy count × detector on/off × indirect pacing) cells, each
// evaluated by a series of independent campaign repetitions against real
// FORTRESS deployments (attack.CampaignSeries). Zero-valued fields select defaults,
// except Seed and OmegaDirect, for which zero is itself meaningful (see the
// field docs).
type LiveCampaignConfig struct {
	// Chi is the randomization key-space size χ. Live campaigns actually
	// drive every probe through the executable stack, so χ stays small by
	// design — the sweep is about shapes, not about the χ = 2¹⁶ the
	// analytic models evaluate. Default 24.
	Chi uint64
	// Reps is the number of campaign repetitions per cell. Default 8.
	Reps int
	// Seed makes the sweep reproducible. Unlike the other fields, zero is
	// not rewritten to a default: 0 is itself a valid, reproducible seed.
	Seed uint64
	// Workers bounds the sweep's total concurrency, split across the cell
	// fan-out and each cell's repetition series exactly like the
	// Monte-Carlo sweeps split theirs; it never affects results. Campaign
	// repetitions are latency-bound, so values above the core count help.
	Workers int
	// MaxSteps is the per-repetition campaign horizon. Default 40.
	MaxSteps uint64
	// Rerandomize selects the obfuscation regime for every cell: true runs
	// PO (re-randomize each step), false runs SO.
	Rerandomize bool
	// OmegaDirect is the direct probe budget per step. Zero means no
	// direct probes at all (an indirect-only sweep) — it is deliberately
	// NOT rewritten to a default, so the header a caller prints always
	// reflects the budget that actually ran; cells whose pacing is also
	// zero then fail validation with "needs a probe budget".
	OmegaDirect uint64
	// Servers is the per-group server count n_s. Default 3.
	Servers int
	// Groups is the replica-group-count grid: each cell deploys its value as
	// fortress.Config.Groups, so one sweep compares the classic single-group
	// fortress against sharded multi-group deployments. Default {1}.
	Groups []int
	// Backends is the replication-engine grid, by name ("pb", "smr"), so
	// one sweep compares probe economics across replication styles.
	// Default {"pb"}.
	Backends []string
	// ProxyCounts is the n_p grid. Default {2, 3, 4}.
	ProxyCounts []int
	// Detectors is the detector on/off grid. Default {false, true}.
	Detectors []bool
	// Pacings is the OmegaIndirect (κ·ω) grid: indirect server probes per
	// step the attacker risks against the detector. Default {0, 1, 2}.
	Pacings []uint64
	// DetectorThreshold flags a probe source after this many invalid
	// requests when the detector is on. Default 8.
	DetectorThreshold int
	// CheckpointEvery and UpdateWindow tune the server tier's resync
	// machinery (the PB delta stream's checkpoint cadence, and the
	// PB-retransmission/SMR-catch-up history bound). Zero selects the
	// engine defaults; they are passed through to every cell's deployment
	// untouched.
	CheckpointEvery int
	UpdateWindow    int
	// WorkloadAxes is the measurement-workload grid shared with the fault
	// sweep: named workload presets × read-fraction overrides × read
	// leases, appended after the pacing axis. Setting any workload or
	// read-fraction value turns availability + virtual-latency measurement
	// on for those cells; leaving both empty keeps the historical sweep —
	// no measurement probes at all, one cell per lease value.
	WorkloadAxes
	// CollectMetrics attaches a private metrics registry to every campaign
	// repetition and merges the per-repetition snapshots into each row's
	// Metrics field (repetition order; trace rings prefixed "repN/").
	// Metrics are observational only — collection never changes results —
	// and the merged Counters section is deterministic at any Workers value.
	CollectMetrics bool
}

// DefaultLiveCampaignConfig is the grid the CLI and benchmarks use.
func DefaultLiveCampaignConfig() LiveCampaignConfig {
	return LiveCampaignConfig{
		Chi:               24,
		Reps:              8,
		Seed:              1,
		MaxSteps:          40,
		OmegaDirect:       2,
		Servers:           3,
		Groups:            []int{1},
		Backends:          []string{"pb"},
		ProxyCounts:       []int{2, 3, 4},
		Detectors:         []bool{false, true},
		Pacings:           []uint64{0, 1, 2},
		DetectorThreshold: 8,
	}
}

// withDefaults fills zero-valued fields from DefaultLiveCampaignConfig.
// Seed and OmegaDirect are exempt: zero is meaningful for both (seed 0 is a
// valid seed; ω_direct 0 is an indirect-only sweep).
func (c LiveCampaignConfig) withDefaults() LiveCampaignConfig {
	d := DefaultLiveCampaignConfig()
	if c.Chi == 0 {
		c.Chi = d.Chi
	}
	if c.Reps == 0 {
		c.Reps = d.Reps
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = d.MaxSteps
	}
	if c.Servers == 0 {
		c.Servers = d.Servers
	}
	if len(c.Groups) == 0 {
		c.Groups = d.Groups
	}
	if len(c.Backends) == 0 {
		c.Backends = d.Backends
	}
	if len(c.ProxyCounts) == 0 {
		c.ProxyCounts = d.ProxyCounts
	}
	if len(c.Detectors) == 0 {
		c.Detectors = d.Detectors
	}
	if len(c.Pacings) == 0 {
		c.Pacings = d.Pacings
	}
	if c.DetectorThreshold == 0 {
		c.DetectorThreshold = d.DetectorThreshold
	}
	return c
}

// LiveCampaignRow is one sweep cell: a (backend, proxy count, detector,
// pacing) point with its aggregated campaign-series outcome.
type LiveCampaignRow struct {
	Backend string
	Proxies int
	// Groups is the cell's replica-group count (1 = classic single-group).
	Groups        int
	Detector      bool
	OmegaIndirect uint64
	// Workload names the cell's measurement-workload preset ("-" when the
	// cell ran without measurement); ReadFrac is its effective read share
	// (NaN without measurement); Leases reports whether the server tier
	// ran with read leases on.
	Workload    string
	ReadFrac    float64
	Leases      bool
	Reps        uint64
	Compromised uint64
	// MeanLifetime and CI95 summarize the empirical lifetimes
	// (whole steps survived) across the cell's repetitions.
	MeanLifetime float64
	CI95         float64
	// Availability and AvailabilityCI95 summarize the per-repetition
	// fraction of workload probes that got a doubly-signed (or valid
	// lease-read) answer. Zero when the sweep ran with ReadFrac zero.
	Availability     float64
	AvailabilityCI95 float64
	// ShardAvailability holds the per-replica-group mean availability,
	// indexed by group; nil unless the cell ran sharded (Groups > 1) with
	// availability measurement on.
	ShardAvailability []float64
	// P50/P99/P999 are the cell's virtual-latency percentiles in
	// milliseconds over the merged repetition histograms; NaN when the
	// cell ran without measurement. ShardP99 is the per-replica-group p99
	// breakdown, nil on single-group cells.
	P50      float64
	P99      float64
	P999     float64
	ShardP99 []float64
	// Routes histograms how the compromised repetitions fell.
	Routes map[string]uint64
	// Metrics is the cell's merged per-repetition metrics snapshot; nil
	// unless the sweep ran with CollectMetrics.
	Metrics *metrics.Snapshot
}

// LiveCampaign runs the live-campaign sweep: every grid cell drives Reps
// full de-randomization campaigns against its own fleet of FORTRESS
// deployments through attack.CampaignSeries, and the rows come back in grid
// order (backend, then proxy count, then detector, then pacing, then the
// workload axes: preset, read fraction, leases).
//
// Determinism matches the Monte-Carlo sweeps: per-cell random streams are
// pre-split in grid order, each cell's series is itself bit-identical at any
// worker count, so the whole sweep reproduces from (Seed, Reps) alone
// regardless of Workers.
func LiveCampaign(cfg LiveCampaignConfig) ([]LiveCampaignRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Reps < 0 {
		return nil, errors.New("experiments: live campaign needs a positive repetition count")
	}
	space, err := keyspace.NewSpace(cfg.Chi)
	if err != nil {
		return nil, err
	}

	wlCells, err := cfg.WorkloadAxes.expand(true)
	if err != nil {
		return nil, err
	}
	type cell struct {
		backend  replica.Backend
		proxies  int
		groups   int
		detector bool
		pacing   uint64
		wl       workloadCell
	}
	var cells []cell
	for _, backendName := range cfg.Backends {
		backend, err := replica.ParseBackend(backendName)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, np := range cfg.ProxyCounts {
			for _, groups := range cfg.Groups {
				if groups < 1 {
					return nil, fmt.Errorf("experiments: group count %d must be at least 1", groups)
				}
				for _, det := range cfg.Detectors {
					for _, pacing := range cfg.Pacings {
						for _, wl := range wlCells {
							cells = append(cells, cell{backend, np, groups, det, pacing, wl})
						}
					}
				}
			}
		}
	}
	rng := xrand.New(cfg.Seed + 6)
	rngs := sim.SplitRNGs(rng, len(cells))
	inner := innerWorkers(cfg.Workers, len(cells))
	rows := make([]LiveCampaignRow, len(cells))
	err = sim.ForEach(len(cells), cfg.Workers, func(i int) error {
		c := cells[i]
		tmpl := fortress.Config{
			Servers:        cfg.Servers,
			Proxies:        c.proxies,
			Groups:         c.groups,
			Backend:        c.backend,
			ServiceFactory: func() service.Service { return service.NewKV() },
			// Generous relative timings: the sweep measures probe economics,
			// not timeout behaviour, and must stay deterministic under load.
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
			ServerTimeout:     5 * time.Second,
			CheckpointEvery:   cfg.CheckpointEvery,
			UpdateWindow:      cfg.UpdateWindow,
			Leases:            c.wl.leases,
		}
		if c.detector {
			// An effectively unbounded window keeps flagging a pure
			// function of probe counts, never of wall-clock timing.
			tmpl.DetectorWindow = time.Hour
			tmpl.DetectorThreshold = cfg.DetectorThreshold
		}
		camp := attack.CampaignConfig{
			OmegaDirect:   cfg.OmegaDirect,
			OmegaIndirect: c.pacing,
			MaxSteps:      cfg.MaxSteps,
			Rerandomize:   cfg.Rerandomize,
		}
		if !c.wl.off {
			camp.MeasureAvailability = true
			camp.Workload = c.wl.spec
		}
		var regs []*metrics.Registry
		var customize func(rep int, fc *fortress.Config)
		if cfg.CollectMetrics {
			regs = seriesRegistries(cfg.Reps)
			customize = func(rep int, fc *fortress.Config) {
				fc.Metrics = regs[rep]
			}
		}
		series, err := attack.CampaignSeries(tmpl, space, attack.SeriesConfig{
			Campaign:  camp,
			Workers:   inner,
			Customize: customize,
		}, cfg.Reps, rngs[i])
		if err != nil {
			return fmt.Errorf("experiments: cell (backend=%s np=%d groups=%d det=%v pace=%d workload=%s leases=%t): %w",
				c.backend, c.proxies, c.groups, c.detector, c.pacing, c.wl.name, c.wl.leases, err)
		}
		var shardAvail []float64
		for _, s := range series.ShardAvailability {
			shardAvail = append(shardAvail, s.Mean)
		}
		p50, p99, p999 := latencyColumns(series.Latency)
		rows[i] = LiveCampaignRow{
			Backend:           c.backend.String(),
			Proxies:           c.proxies,
			Groups:            c.groups,
			Detector:          c.detector,
			OmegaIndirect:     c.pacing,
			Workload:          c.wl.name,
			ReadFrac:          c.wl.rf,
			Leases:            c.wl.leases,
			Reps:              series.Reps,
			Compromised:       series.Compromised,
			MeanLifetime:      series.Lifetime.Mean,
			CI95:              series.Lifetime.CI95,
			Availability:      series.Availability.Mean,
			AvailabilityCI95:  series.Availability.CI95,
			ShardAvailability: shardAvail,
			P50:               p50,
			P99:               p99,
			P999:              p999,
			ShardP99:          shardP99s(series.ShardLatency),
			Routes:            series.Routes,
		}
		if regs != nil {
			snap := mergeRegistries(regs)
			rows[i].Metrics = &snap
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatLiveCampaign renders sweep rows as an aligned text table. The p50/
// p99/p999 columns are virtual-latency percentiles in milliseconds ("-"
// when the cell ran without a measurement workload); shardp99 breaks p99
// down per replica group on sharded cells.
func FormatLiveCampaign(rows []LiveCampaignRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-7s %-9s %-6s %-15s %-9s %-7s %-6s %-12s %-14s %-10s %-13s %-7s %-7s %-7s %-18s %-18s %s\n",
		"backend", "proxies", "groups", "detector", "pace", "workload", "readfrac", "leases", "reps", "compromised", "meanLifetime", "ci95", "availability", "p50ms", "p99ms", "p999ms", "shards", "shardp99", "routes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8d %-7d %-9v %-6d %-15s %-9s %-7t %-6d %-12d %-14.6g %-10.3g %-13.4g %-7s %-7s %-7s %-18s %-18s %s\n",
			r.Backend, r.Proxies, r.Groups, r.Detector, r.OmegaIndirect, r.Workload, formatOptFloat(r.ReadFrac), r.Leases, r.Reps, r.Compromised,
			r.MeanLifetime, r.CI95, r.Availability,
			formatOptFloat(r.P50), formatOptFloat(r.P99), formatOptFloat(r.P999),
			formatShardAvail(r.ShardAvailability), formatOptFloats(r.ShardP99), formatRoutes(r.Routes))
	}
	return b.String()
}

// formatShardAvail renders per-group availabilities compactly ("-" when the
// cell ran single-group or without availability probes).
func formatShardAvail(avail []float64) string {
	if len(avail) == 0 {
		return "-"
	}
	parts := make([]string, len(avail))
	for g, a := range avail {
		parts[g] = fmt.Sprintf("%.3g", a)
	}
	return strings.Join(parts, ";")
}

// formatRoutes renders a route histogram compactly and deterministically.
func formatRoutes(routes map[string]uint64) string {
	if len(routes) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(routes))
	for k := range routes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, routes[k]))
	}
	return strings.Join(parts, " ")
}
