package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"fortress/internal/attack"
	"fortress/internal/fortress"
	"fortress/internal/keyspace"
	"fortress/internal/metrics"
	"fortress/internal/replica"
	"fortress/internal/service"
	"fortress/internal/sim"
	"fortress/internal/xrand"
)

// LiveCampaignConfig tunes the live-campaign sweep: a grid of
// (backend × proxy count × detector on/off × indirect pacing) cells, each
// evaluated by a series of independent campaign repetitions against real
// FORTRESS deployments (attack.CampaignSeries). Zero-valued fields select defaults,
// except Seed and OmegaDirect, for which zero is itself meaningful (see the
// field docs).
type LiveCampaignConfig struct {
	// Chi is the randomization key-space size χ. Live campaigns actually
	// drive every probe through the executable stack, so χ stays small by
	// design — the sweep is about shapes, not about the χ = 2¹⁶ the
	// analytic models evaluate. Default 24.
	Chi uint64
	// Reps is the number of campaign repetitions per cell. Default 8.
	Reps int
	// Seed makes the sweep reproducible. Unlike the other fields, zero is
	// not rewritten to a default: 0 is itself a valid, reproducible seed.
	Seed uint64
	// Workers bounds the sweep's total concurrency, split across the cell
	// fan-out and each cell's repetition series exactly like the
	// Monte-Carlo sweeps split theirs; it never affects results. Campaign
	// repetitions are latency-bound, so values above the core count help.
	Workers int
	// MaxSteps is the per-repetition campaign horizon. Default 40.
	MaxSteps uint64
	// Rerandomize selects the obfuscation regime for every cell: true runs
	// PO (re-randomize each step), false runs SO.
	Rerandomize bool
	// OmegaDirect is the direct probe budget per step. Zero means no
	// direct probes at all (an indirect-only sweep) — it is deliberately
	// NOT rewritten to a default, so the header a caller prints always
	// reflects the budget that actually ran; cells whose pacing is also
	// zero then fail validation with "needs a probe budget".
	OmegaDirect uint64
	// Servers is the per-group server count n_s. Default 3.
	Servers int
	// Groups is the replica-group-count grid: each cell deploys its value as
	// fortress.Config.Groups, so one sweep compares the classic single-group
	// fortress against sharded multi-group deployments. Default {1}.
	Groups []int
	// Backends is the replication-engine grid, by name ("pb", "smr"), so
	// one sweep compares probe economics across replication styles.
	// Default {"pb"}.
	Backends []string
	// ProxyCounts is the n_p grid. Default {2, 3, 4}.
	ProxyCounts []int
	// Detectors is the detector on/off grid. Default {false, true}.
	Detectors []bool
	// Pacings is the OmegaIndirect (κ·ω) grid: indirect server probes per
	// step the attacker risks against the detector. Default {0, 1, 2}.
	Pacings []uint64
	// DetectorThreshold flags a probe source after this many invalid
	// requests when the detector is on. Default 8.
	DetectorThreshold int
	// CheckpointEvery and UpdateWindow tune the server tier's resync
	// machinery (the PB delta stream's checkpoint cadence, and the
	// PB-retransmission/SMR-catch-up history bound). Zero selects the
	// engine defaults; they are passed through to every cell's deployment
	// untouched.
	CheckpointEvery int
	UpdateWindow    int
	// ReadFrac, when non-zero, turns on per-step availability measurement
	// with a read/write workload mix: each step issues one client probe, a
	// read (through the lease-aware path) with this probability-free
	// deterministic share, a keyed write otherwise. Negative means an
	// all-write workload. Zero keeps the historical sweep: no availability
	// probes at all.
	ReadFrac float64
	// Leases deploys every cell's server tier with heartbeat-bounded read
	// leases (SMR only; PB ignores the flag).
	Leases bool
	// CollectMetrics attaches a private metrics registry to every campaign
	// repetition and merges the per-repetition snapshots into each row's
	// Metrics field (repetition order; trace rings prefixed "repN/").
	// Metrics are observational only — collection never changes results —
	// and the merged Counters section is deterministic at any Workers value.
	CollectMetrics bool
}

// DefaultLiveCampaignConfig is the grid the CLI and benchmarks use.
func DefaultLiveCampaignConfig() LiveCampaignConfig {
	return LiveCampaignConfig{
		Chi:               24,
		Reps:              8,
		Seed:              1,
		MaxSteps:          40,
		OmegaDirect:       2,
		Servers:           3,
		Groups:            []int{1},
		Backends:          []string{"pb"},
		ProxyCounts:       []int{2, 3, 4},
		Detectors:         []bool{false, true},
		Pacings:           []uint64{0, 1, 2},
		DetectorThreshold: 8,
	}
}

// withDefaults fills zero-valued fields from DefaultLiveCampaignConfig.
// Seed and OmegaDirect are exempt: zero is meaningful for both (seed 0 is a
// valid seed; ω_direct 0 is an indirect-only sweep).
func (c LiveCampaignConfig) withDefaults() LiveCampaignConfig {
	d := DefaultLiveCampaignConfig()
	if c.Chi == 0 {
		c.Chi = d.Chi
	}
	if c.Reps == 0 {
		c.Reps = d.Reps
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = d.MaxSteps
	}
	if c.Servers == 0 {
		c.Servers = d.Servers
	}
	if len(c.Groups) == 0 {
		c.Groups = d.Groups
	}
	if len(c.Backends) == 0 {
		c.Backends = d.Backends
	}
	if len(c.ProxyCounts) == 0 {
		c.ProxyCounts = d.ProxyCounts
	}
	if len(c.Detectors) == 0 {
		c.Detectors = d.Detectors
	}
	if len(c.Pacings) == 0 {
		c.Pacings = d.Pacings
	}
	if c.DetectorThreshold == 0 {
		c.DetectorThreshold = d.DetectorThreshold
	}
	return c
}

// LiveCampaignRow is one sweep cell: a (backend, proxy count, detector,
// pacing) point with its aggregated campaign-series outcome.
type LiveCampaignRow struct {
	Backend string
	Proxies int
	// Groups is the cell's replica-group count (1 = classic single-group).
	Groups        int
	Detector      bool
	OmegaIndirect uint64
	// ReadFrac is the sweep's workload read share (0 when the sweep ran
	// without availability probes); Leases reports whether the server tier
	// ran with read leases on.
	ReadFrac    float64
	Leases      bool
	Reps        uint64
	Compromised uint64
	// MeanLifetime and CI95 summarize the empirical lifetimes
	// (whole steps survived) across the cell's repetitions.
	MeanLifetime float64
	CI95         float64
	// Availability and AvailabilityCI95 summarize the per-repetition
	// fraction of workload probes that got a doubly-signed (or valid
	// lease-read) answer. Zero when the sweep ran with ReadFrac zero.
	Availability     float64
	AvailabilityCI95 float64
	// ShardAvailability holds the per-replica-group mean availability,
	// indexed by group; nil unless the cell ran sharded (Groups > 1) with
	// availability measurement on.
	ShardAvailability []float64
	// Routes histograms how the compromised repetitions fell.
	Routes map[string]uint64
	// Metrics is the cell's merged per-repetition metrics snapshot; nil
	// unless the sweep ran with CollectMetrics.
	Metrics *metrics.Snapshot
}

// LiveCampaign runs the live-campaign sweep: every grid cell drives Reps
// full de-randomization campaigns against its own fleet of FORTRESS
// deployments through attack.CampaignSeries, and the rows come back in grid
// order (backend, then proxy count, then detector, then pacing).
//
// Determinism matches the Monte-Carlo sweeps: per-cell random streams are
// pre-split in grid order, each cell's series is itself bit-identical at any
// worker count, so the whole sweep reproduces from (Seed, Reps) alone
// regardless of Workers.
func LiveCampaign(cfg LiveCampaignConfig) ([]LiveCampaignRow, error) {
	cfg = cfg.withDefaults()
	if cfg.Reps < 0 {
		return nil, errors.New("experiments: live campaign needs a positive repetition count")
	}
	space, err := keyspace.NewSpace(cfg.Chi)
	if err != nil {
		return nil, err
	}

	type cell struct {
		backend  replica.Backend
		proxies  int
		groups   int
		detector bool
		pacing   uint64
	}
	var cells []cell
	for _, backendName := range cfg.Backends {
		backend, err := replica.ParseBackend(backendName)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, np := range cfg.ProxyCounts {
			for _, groups := range cfg.Groups {
				if groups < 1 {
					return nil, fmt.Errorf("experiments: group count %d must be at least 1", groups)
				}
				for _, det := range cfg.Detectors {
					for _, pacing := range cfg.Pacings {
						cells = append(cells, cell{backend, np, groups, det, pacing})
					}
				}
			}
		}
	}
	rng := xrand.New(cfg.Seed + 6)
	rngs := sim.SplitRNGs(rng, len(cells))
	inner := innerWorkers(cfg.Workers, len(cells))
	rows := make([]LiveCampaignRow, len(cells))
	err = sim.ForEach(len(cells), cfg.Workers, func(i int) error {
		c := cells[i]
		tmpl := fortress.Config{
			Servers:        cfg.Servers,
			Proxies:        c.proxies,
			Groups:         c.groups,
			Backend:        c.backend,
			ServiceFactory: func() service.Service { return service.NewKV() },
			// Generous relative timings: the sweep measures probe economics,
			// not timeout behaviour, and must stay deterministic under load.
			HeartbeatInterval: 10 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
			ServerTimeout:     5 * time.Second,
			CheckpointEvery:   cfg.CheckpointEvery,
			UpdateWindow:      cfg.UpdateWindow,
			Leases:            cfg.Leases,
		}
		if c.detector {
			// An effectively unbounded window keeps flagging a pure
			// function of probe counts, never of wall-clock timing.
			tmpl.DetectorWindow = time.Hour
			tmpl.DetectorThreshold = cfg.DetectorThreshold
		}
		camp := attack.CampaignConfig{
			OmegaDirect:   cfg.OmegaDirect,
			OmegaIndirect: c.pacing,
			MaxSteps:      cfg.MaxSteps,
			Rerandomize:   cfg.Rerandomize,
		}
		if cfg.ReadFrac != 0 {
			camp.MeasureAvailability = true
			camp.ReadFraction = cfg.ReadFrac
		}
		var regs []*metrics.Registry
		var customize func(rep int, fc *fortress.Config)
		if cfg.CollectMetrics {
			regs = seriesRegistries(cfg.Reps)
			customize = func(rep int, fc *fortress.Config) {
				fc.Metrics = regs[rep]
			}
		}
		series, err := attack.CampaignSeries(tmpl, space, attack.SeriesConfig{
			Campaign:  camp,
			Workers:   inner,
			Customize: customize,
		}, cfg.Reps, rngs[i])
		if err != nil {
			return fmt.Errorf("experiments: cell (backend=%s np=%d groups=%d det=%v pace=%d): %w",
				c.backend, c.proxies, c.groups, c.detector, c.pacing, err)
		}
		var shardAvail []float64
		for _, s := range series.ShardAvailability {
			shardAvail = append(shardAvail, s.Mean)
		}
		rows[i] = LiveCampaignRow{
			Backend:           c.backend.String(),
			Proxies:           c.proxies,
			Groups:            c.groups,
			Detector:          c.detector,
			OmegaIndirect:     c.pacing,
			ReadFrac:          readFracReported(cfg.ReadFrac),
			Leases:            cfg.Leases,
			Reps:              series.Reps,
			Compromised:       series.Compromised,
			MeanLifetime:      series.Lifetime.Mean,
			CI95:              series.Lifetime.CI95,
			Availability:      series.Availability.Mean,
			AvailabilityCI95:  series.Availability.CI95,
			ShardAvailability: shardAvail,
			Routes:            series.Routes,
		}
		if regs != nil {
			snap := mergeRegistries(regs)
			rows[i].Metrics = &snap
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// readFracReported normalizes a configured read fraction for reporting:
// negative (all writes) reports as 0, values above 1 clamp, like the
// campaign's own resolution — except zero stays zero (measurement off).
func readFracReported(f float64) float64 {
	switch {
	case f < 0:
		return 0
	case f > 1:
		return 1
	default:
		return f
	}
}

// FormatLiveCampaign renders sweep rows as an aligned text table.
func FormatLiveCampaign(rows []LiveCampaignRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-7s %-9s %-6s %-9s %-7s %-6s %-12s %-14s %-10s %-13s %-18s %s\n",
		"backend", "proxies", "groups", "detector", "pace", "readfrac", "leases", "reps", "compromised", "meanLifetime", "ci95", "availability", "shards", "routes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8d %-7d %-9v %-6d %-9g %-7t %-6d %-12d %-14.6g %-10.3g %-13.4g %-18s %s\n",
			r.Backend, r.Proxies, r.Groups, r.Detector, r.OmegaIndirect, r.ReadFrac, r.Leases, r.Reps, r.Compromised,
			r.MeanLifetime, r.CI95, r.Availability, formatShardAvail(r.ShardAvailability), formatRoutes(r.Routes))
	}
	return b.String()
}

// formatShardAvail renders per-group availabilities compactly ("-" when the
// cell ran single-group or without availability probes).
func formatShardAvail(avail []float64) string {
	if len(avail) == 0 {
		return "-"
	}
	parts := make([]string, len(avail))
	for g, a := range avail {
		parts[g] = fmt.Sprintf("%.3g", a)
	}
	return strings.Join(parts, ";")
}

// formatRoutes renders a route histogram compactly and deterministically.
func formatRoutes(routes map[string]uint64) string {
	if len(routes) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(routes))
	for k := range routes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, routes[k]))
	}
	return strings.Join(parts, " ")
}
