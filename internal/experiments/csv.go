package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits results as CSV with a header row, ready for plotting the
// paper's figures (EL on a log axis). NaN cells are left empty.
func WriteCSV(w io.Writer, results []Result) error {
	if _, err := io.WriteString(w, "system,alpha,kappa,analytic_el,mc_el,mc_ci95,trials\n"); err != nil {
		return err
	}
	for _, r := range results {
		row := fmt.Sprintf("%s,%s,%s,%s,%s,%s,%d\n",
			r.System,
			formatFloat(r.Alpha),
			formatFloat(r.Kappa),
			formatFloat(r.Analytic),
			formatFloat(r.MC),
			formatFloat(r.MCCI),
			r.Trials,
		)
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteFortifyCSV emits E4 comparison rows as CSV.
func WriteFortifyCSV(w io.Writer, rows []FortifyComparison) error {
	if _, err := io.WriteString(w, "alpha,kappa,s2so_el,s2so_ci95,s0so_el,s2so_outlives\n"); err != nil {
		return err
	}
	for _, r := range rows {
		row := fmt.Sprintf("%s,%s,%s,%s,%s,%t\n",
			formatFloat(r.Alpha),
			formatFloat(r.Kappa),
			formatFloat(r.S2SO),
			formatFloat(r.S2SOCI),
			formatFloat(r.S0SO),
			r.Outlive,
		)
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteLiveCampaignCSV emits live-campaign sweep rows as CSV, one row per
// (backend, proxy count, group count, detector, pacing, workload) cell,
// ready for plotting next to the fig1/fig2 series. shard_availability and
// shard_p99_ms are per-group vectors, semicolon-joined in group order
// (empty for single-group cells); the latency percentile cells are empty
// when the cell ran without a measurement workload.
func WriteLiveCampaignCSV(w io.Writer, rows []LiveCampaignRow) error {
	if _, err := io.WriteString(w,
		"backend,proxies,detector,omega_indirect,workload,read_frac,leases,reps,compromised,mean_lifetime,ci95,availability,availability_ci95,p50_ms,p99_ms,p999_ms,groups,shard_availability,shard_p99_ms,route_server_indirect,route_server_launchpad,route_all_proxies\n"); err != nil {
		return err
	}
	for _, r := range rows {
		row := fmt.Sprintf("%s,%d,%t,%d,%s,%s,%t,%d,%d,%s,%s,%s,%s,%s,%s,%s,%d,%s,%s,%d,%d,%d\n",
			r.Backend,
			r.Proxies,
			r.Detector,
			r.OmegaIndirect,
			csvWorkload(r.Workload),
			formatFloat(r.ReadFrac),
			r.Leases,
			r.Reps,
			r.Compromised,
			formatFloat(r.MeanLifetime),
			formatFloat(r.CI95),
			formatFloat(r.Availability),
			formatFloat(r.AvailabilityCI95),
			formatFloat(r.P50),
			formatFloat(r.P99),
			formatFloat(r.P999),
			r.Groups,
			formatFloatList(r.ShardAvailability),
			formatFloatList(r.ShardP99),
			r.Routes["server-indirect"],
			r.Routes["server-launchpad"],
			r.Routes["all-proxies"],
		)
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// csvWorkload renders a workload-preset label, leaving the "-" placeholder
// of measurement-off cells empty like the other absent cells.
func csvWorkload(name string) string {
	if name == "-" {
		return ""
	}
	return name
}

// WriteFaultSweepCSV emits fault-sweep rows as CSV, one row per
// (backend, preset, drop rate, proxy count, group count, persistence,
// jitter, workload, read fraction, leases) cell. shard_availability and
// shard_p99_ms are per-group vectors, semicolon-joined in group order
// (empty for single-group cells).
func WriteFaultSweepCSV(w io.Writer, rows []FaultSweepRow) error {
	if _, err := io.WriteString(w,
		"backend,preset,drop_rate,proxies,persist,fsync_every,jitter,workload,read_frac,leases,reps,compromised,mean_lifetime,ci95,availability,availability_ci95,p50_ms,p99_ms,p999_ms,groups,shard_availability,shard_p99_ms,route_server_indirect,route_server_launchpad,route_all_proxies\n"); err != nil {
		return err
	}
	for _, r := range rows {
		row := fmt.Sprintf("%s,%s,%s,%d,%s,%d,%d,%s,%s,%t,%d,%d,%s,%s,%s,%s,%s,%s,%s,%d,%s,%s,%d,%d,%d\n",
			r.Backend,
			r.Preset,
			formatFloat(r.DropRate),
			r.Proxies,
			r.Persist,
			r.FsyncEvery,
			r.Jitter,
			csvWorkload(r.Workload),
			formatFloat(r.ReadFrac),
			r.Leases,
			r.Reps,
			r.Compromised,
			formatFloat(r.MeanLifetime),
			formatFloat(r.CI95),
			formatFloat(r.Availability),
			formatFloat(r.AvailabilityCI95),
			formatFloat(r.P50),
			formatFloat(r.P99),
			formatFloat(r.P999),
			r.Groups,
			formatFloatList(r.ShardAvailability),
			formatFloatList(r.ShardP99),
			r.Routes["server-indirect"],
			r.Routes["server-launchpad"],
			r.Routes["all-proxies"],
		)
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteAlphaGrowthCSV emits E6 rows as CSV.
func WriteAlphaGrowthCSV(w io.Writer, rows []AlphaGrowthRow) error {
	if _, err := io.WriteString(w, "step,alpha_so,alpha_po\n"); err != nil {
		return err
	}
	for _, r := range rows {
		row := fmt.Sprintf("%d,%s,%s\n", r.Step, formatFloat(r.AlphaSO), formatFloat(r.AlphaPO))
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// formatFloatList renders a float slice semicolon-joined — a single CSV cell
// holding a per-group vector — or empty for a nil slice.
func formatFloatList(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = formatFloat(v)
	}
	return strings.Join(parts, ";")
}

// formatFloat renders a float compactly, leaving NaN empty and marking
// +Inf (the "no compromise observed" sentinel) explicitly.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return ""
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return strconv.FormatFloat(v, 'g', 10, 64)
	}
}
