package experiments

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// smallFaultSweep is a grid sized for tests: active schedules on every cell,
// short horizon, few repetitions.
func smallFaultSweep(workers int) FaultSweepConfig {
	return FaultSweepConfig{
		Chi:      16,
		Reps:     2,
		Seed:     5,
		Workers:  workers,
		MaxSteps: 8,
		Presets:  []string{"rolling-partition", "quorum-partition", "proxy-outage"},
	}
}

// TestFaultSweepBitIdenticalAcrossWorkers is the sweep-level determinism
// contract with active fault schedules: every row — availability fractions
// and floating-point lifetime summaries included — is bit-identical at 1, 2
// and 8 workers.
func TestFaultSweepBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []FaultSweepRow {
		t.Helper()
		rows, err := FaultSweep(smallFaultSweep(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	base := run(1)
	if len(base) != 3 {
		t.Fatalf("rows = %d, want 3", len(base))
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d rows %+v differ from workers=1 %+v", workers, got, base)
		}
	}
	// The CSV rendering — the artifact the CLI acceptance compares — must
	// therefore also be byte-identical.
	var a, b bytes.Buffer
	if err := WriteFaultSweepCSV(&a, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteFaultSweepCSV(&b, run(8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("CSV differs between workers=1 and workers=8")
	}
}

// TestShardSweepBitIdenticalAcrossWorkers extends the determinism contract
// to the sharded grid: a two-group sweep with a shard-cut cell is
// bit-identical at 1, 2 and 8 workers — rows, per-shard availability
// vectors, merged Stable-counter snapshots and the rendered CSV alike —
// and the cut cell shows exactly the isolation the consistent-hash
// partitioning promises: the islanded shard collapses while the other
// holds at 1.
func TestShardSweepBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]FaultSweepRow, []map[string]uint64) {
		t.Helper()
		cfg := smallFaultSweep(workers)
		cfg.Groups = []int{2}
		cfg.Presets = []string{"none", "shard-cut"}
		cfg.CollectMetrics = true
		rows, err := FaultSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counters := make([]map[string]uint64, len(rows))
		for i := range rows {
			if rows[i].Metrics == nil {
				t.Fatalf("workers=%d: row %d has no metrics despite CollectMetrics", workers, i)
			}
			counters[i] = rows[i].Metrics.Counters
			// Only the Stable section is part of the determinism contract;
			// strip the observational payload before whole-row comparison.
			rows[i].Metrics = nil
		}
		return rows, counters
	}
	base, baseCounters := run(1)
	if len(base) != 2 {
		t.Fatalf("rows = %d, want 2", len(base))
	}
	pristine, cut := base[0], base[1]
	if pristine.Preset != "none" || cut.Preset != "shard-cut" {
		t.Fatalf("row order: %s, %s", pristine.Preset, cut.Preset)
	}
	for i, r := range base {
		if r.Groups != 2 || len(r.ShardAvailability) != 2 {
			t.Fatalf("row %d: groups=%d shards=%d, want a two-shard cell",
				i, r.Groups, len(r.ShardAvailability))
		}
	}
	// The fault is scoped to the last group: shard 0's slice of the keyspace
	// must ride out the cut untouched while shard 1 measurably degrades.
	if pristine.ShardAvailability[1] != 1 {
		t.Fatalf("pristine shard 1 availability = %g, want 1", pristine.ShardAvailability[1])
	}
	if cut.ShardAvailability[0] != 1 {
		t.Errorf("shard 0 availability = %g under shard-cut, want 1 (fault scoped to group 1)",
			cut.ShardAvailability[0])
	}
	if cut.ShardAvailability[1] >= pristine.ShardAvailability[1]-0.15 {
		t.Errorf("shard-cut did not measurably degrade shard 1: %g vs pristine %g",
			cut.ShardAvailability[1], pristine.ShardAvailability[1])
	}
	if c := baseCounters[1][`campaign_shard_probes_total{group="1"}`]; c == 0 {
		t.Error("shard-cut cell recorded no per-shard probe counters")
	}
	for _, workers := range []int{2, 8} {
		got, gotCounters := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d rows %+v differ from workers=1 %+v", workers, got, base)
		}
		if !reflect.DeepEqual(gotCounters, baseCounters) {
			t.Errorf("workers=%d stable counters differ from workers=1:\n got %v\nwant %v",
				workers, gotCounters, baseCounters)
		}
	}
	// The CSV rendering — groups and shard_availability columns included —
	// must therefore also be byte-identical.
	rerun, _ := run(8)
	var a, b bytes.Buffer
	if err := WriteFaultSweepCSV(&a, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteFaultSweepCSV(&b, rerun); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("sharded CSV differs between workers=1 and workers=8")
	}
}

// TestFaultSweepQuorumPartitionDegradesAvailability is the headline claim of
// the fault subsystem: islanding a server quorum from the proxy tier
// measurably degrades campaign-measured availability versus the pristine
// baseline.
func TestFaultSweepQuorumPartitionDegradesAvailability(t *testing.T) {
	cfg := smallFaultSweep(0)
	cfg.Presets = []string{"none", "quorum-partition"}
	cfg.MaxSteps = 12
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	pristine, cut := rows[0], rows[1]
	if pristine.Preset != "none" || cut.Preset != "quorum-partition" {
		t.Fatalf("row order: %s, %s", pristine.Preset, cut.Preset)
	}
	if pristine.Availability < cut.Availability+0.15 {
		t.Errorf("quorum partition did not measurably degrade availability: pristine %.4g, cut %.4g",
			pristine.Availability, cut.Availability)
	}
}

// TestFaultSweepDurabilityAxes drives the blackout preset through the full
// sweep across the persistence grid with a jittered variant: the grid fans
// out wal cells (per fsync cadence) next to the collapsed mem cell, rows
// carry the axis labels in grid order, and the wal cells actually leave
// per-repetition store directories under PersistRoot.
func TestFaultSweepDurabilityAxes(t *testing.T) {
	cfg := smallFaultSweep(0)
	cfg.Presets = []string{"blackout"}
	cfg.Persist = []string{"mem", "wal"}
	cfg.FsyncEvery = []int{1}
	cfg.Jitters = []uint64{0, 1}
	cfg.PersistRoot = t.TempDir()
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		persist string
		fsync   int
		jitter  uint64
	}{{"mem", 0, 0}, {"mem", 0, 1}, {"wal", 1, 0}, {"wal", 1, 1}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Preset != "blackout" || r.Persist != w.persist || r.FsyncEvery != w.fsync || r.Jitter != w.jitter {
			t.Errorf("row %d = (%s persist=%s fsync=%d jitter=%d), want (blackout %s %d %d)",
				i, r.Preset, r.Persist, r.FsyncEvery, r.Jitter, w.persist, w.fsync, w.jitter)
		}
	}
	logs, err := filepath.Glob(filepath.Join(cfg.PersistRoot, "cell*", "r*", "s*", "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Errorf("no WAL files under %s after a wal-cell sweep", cfg.PersistRoot)
	}
}

// TestReadMixSweepBitIdenticalAcrossWorkers extends the determinism
// contract to the workload axes: a read-mostly SMR sweep fanned over
// leases-off and leases-on cells is bit-identical at 1, 2 and 8 workers —
// the per-step read/write choice is a deterministic threshold, never an RNG
// draw, and lease fallback always completes the probe.
func TestReadMixSweepBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []FaultSweepRow {
		t.Helper()
		cfg := smallFaultSweep(workers)
		cfg.Backends = []string{"smr"}
		cfg.Presets = []string{"rolling-partition"}
		cfg.ReadFracs = []float64{0.5, 0.95}
		cfg.Leases = []bool{false, true}
		rows, err := FaultSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	base := run(1)
	want := []struct {
		frac   float64
		leases bool
	}{{0.5, false}, {0.5, true}, {0.95, false}, {0.95, true}}
	if len(base) != len(want) {
		t.Fatalf("rows = %d, want %d", len(base), len(want))
	}
	for i, w := range want {
		if base[i].ReadFrac != w.frac || base[i].Leases != w.leases {
			t.Errorf("row %d = (readfrac=%g leases=%t), want (%g %t)",
				i, base[i].ReadFrac, base[i].Leases, w.frac, w.leases)
		}
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d rows %+v differ from workers=1 %+v", workers, got, base)
		}
	}
}

// TestQuorumPartitionLeasesNoWorse is the sweep-level availability claim:
// under the quorum-partition schedule at a read-mostly mix, turning leases
// on must not cost availability — lease reads either answer locally or fall
// back to the same ordered path the baseline uses.
func TestQuorumPartitionLeasesNoWorse(t *testing.T) {
	cfg := smallFaultSweep(0)
	cfg.Backends = []string{"smr"}
	cfg.Presets = []string{"quorum-partition"}
	cfg.MaxSteps = 12
	cfg.ReadFracs = []float64{0.95}
	cfg.Leases = []bool{false, true}
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Leases || !on.Leases {
		t.Fatalf("row order: leases=%t, leases=%t", off.Leases, on.Leases)
	}
	if on.Availability < off.Availability {
		t.Errorf("leases cost availability under quorum partition: on %.4g < off %.4g",
			on.Availability, off.Availability)
	}
}

func TestFaultSweepRejectsUnknownPreset(t *testing.T) {
	cfg := smallFaultSweep(1)
	cfg.Presets = []string{"no-such-preset"}
	if _, err := FaultSweep(cfg); err == nil || !strings.Contains(err.Error(), "no-such-preset") {
		t.Fatalf("unknown preset: err = %v", err)
	}
}

func TestFormatFaultSweepAndCSV(t *testing.T) {
	rows := []FaultSweepRow{{
		Backend: "pb", Preset: "none", DropRate: 0.5, Proxies: 3, Groups: 2,
		Persist: "wal", FsyncEvery: 8, Jitter: 2,
		Workload: "zipf-poisson", ReadFrac: 0.95, Leases: true,
		Reps: 4, Compromised: 2,
		MeanLifetime: 7.25, CI95: 1.5, Availability: 0.875, AvailabilityCI95: 0.05,
		P50: 0.5, P99: 2, P999: 4,
		ShardAvailability: []float64{1, 0.75},
		ShardP99:          []float64{1.5, 250},
		Routes:            map[string]uint64{"all-proxies": 2},
	}}
	table := FormatFaultSweep(rows)
	for _, want := range []string{"backend", "preset", "availability", "workload", "readfrac", "leases", "groups", "shards", "p99ms", "shardp99", "none", "zipf-poisson", "1;0.75", "1.5;250", "all-proxies:2"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	var buf bytes.Buffer
	if err := WriteFaultSweepCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "backend,preset,drop_rate,proxies,persist,fsync_every,jitter,workload,read_frac,leases,reps,compromised,mean_lifetime,ci95,availability,availability_ci95,p50_ms,p99_ms,p999_ms,") {
		t.Errorf("csv header: %q", got)
	}
	if !strings.Contains(got, "pb,none,0.5,3,wal,8,2,zipf-poisson,0.95,true,4,2,7.25,1.5,0.875,0.05,0.5,2,4,2,1;0.75,1.5;250,0,0,2") {
		t.Errorf("csv row: %q", got)
	}
}
