package experiments

import (
	"fmt"
	"math"
	"strings"

	"fortress/internal/workload"
)

// WorkloadAxes is the shared measurement-workload grid both sweeps embed —
// one definition, so the faults and campaign CLIs cannot drift. Cells fan
// out workload → read fraction → leases, innermost axes last.
type WorkloadAxes struct {
	// Workloads is the named workload-preset grid (workload.PresetNames:
	// "closed", "uniform-closed", "uniform-poisson", "zipf-poisson",
	// "zipf-bursty", "diurnal-ramp"). Every cell measures availability and
	// virtual latency under its preset's arrival process and key
	// popularity. Empty defaults to {"closed"}, the legacy one-probe-per-
	// step health check — except where the embedding sweep documents a
	// measurement-off default.
	Workloads []string
	// ReadFracs overrides the preset's read share, one cell per value in
	// [0, 1] (0 is all writes — a plain fraction, not the deprecated
	// CampaignConfig encoding). Empty keeps each preset's own mix.
	ReadFracs []float64
	// Leases is the read-lease grid: cells with true deploy the server
	// tier with heartbeat-bounded read leases (SMR only; PB ignores the
	// flag). Default {false}.
	Leases []bool
}

// workloadCell is one resolved point of the workload grid.
type workloadCell struct {
	name   string // row label; "-" when measurement is off
	spec   workload.Spec
	rf     float64 // reported read share (the spec's effective fraction)
	leases bool
	off    bool // no measurement workload at all (legacy campaign default)
}

// expand resolves the axes into cells in grid order. When defaultOff is
// true and neither workloads nor read fractions were set, the sweep keeps
// its historical no-measurement default — one cell per lease value.
func (a WorkloadAxes) expand(defaultOff bool) ([]workloadCell, error) {
	leases := a.Leases
	if len(leases) == 0 {
		leases = []bool{false}
	}
	if defaultOff && len(a.Workloads) == 0 && len(a.ReadFracs) == 0 {
		cells := make([]workloadCell, 0, len(leases))
		for _, l := range leases {
			cells = append(cells, workloadCell{name: "-", rf: math.NaN(), leases: l, off: true})
		}
		return cells, nil
	}
	names := a.Workloads
	if len(names) == 0 {
		names = []string{"closed"}
	}
	rfs := a.ReadFracs
	if len(rfs) == 0 {
		rfs = []float64{math.NaN()} // NaN: keep the preset's own mix
	}
	var cells []workloadCell
	for _, name := range names {
		preset, err := workload.PresetByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, rf := range rfs {
			spec := preset
			if !math.IsNaN(rf) {
				if rf < 0 || rf > 1 {
					return nil, fmt.Errorf("experiments: read fraction %g outside [0,1]", rf)
				}
				spec.ReadFraction = rf
			}
			for _, l := range leases {
				cells = append(cells, workloadCell{
					name:   name,
					spec:   spec,
					rf:     spec.ReadFraction,
					leases: l,
				})
			}
		}
	}
	return cells, nil
}

// latencyMillis converts a histogram quantile to milliseconds, NaN when the
// histogram is empty — the sentinel the table/CSV renderers print as "-".
func latencyMillis(h workload.Hist, q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return float64(h.Quantile(q)) / 1e6
}

// latencyColumns summarizes a merged latency histogram into the three row
// percentiles every sweep reports.
func latencyColumns(h workload.Hist) (p50, p99, p999 float64) {
	return latencyMillis(h, 0.50), latencyMillis(h, 0.99), latencyMillis(h, 0.999)
}

// shardP99s summarizes per-group p99 latency in milliseconds; nil when the
// cell ran single-group or without measurement.
func shardP99s(hists []workload.Hist) []float64 {
	if len(hists) == 0 {
		return nil
	}
	out := make([]float64, len(hists))
	for g, h := range hists {
		out[g] = latencyMillis(h, 0.99)
	}
	return out
}

// formatOptFloat renders a millisecond latency column ("-" for NaN).
func formatOptFloat(ms float64) string {
	if math.IsNaN(ms) {
		return "-"
	}
	return fmt.Sprintf("%.3g", ms)
}

// formatOptFloats renders a per-shard latency list ("-" when empty).
func formatOptFloats(ms []float64) string {
	if len(ms) == 0 {
		return "-"
	}
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = formatOptFloat(m)
	}
	return strings.Join(parts, ";")
}
