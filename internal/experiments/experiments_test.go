package experiments

import (
	"math"
	"strings"
	"testing"
)

// fastCfg keeps Monte-Carlo budgets small for unit tests.
func fastCfg() Config {
	return Config{Trials: 20000, Seed: 7, LaunchPadFraction: -1}
}

func TestFigure1Shape(t *testing.T) {
	results, err := Figure1(fastCfg(), []float64{0.001, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// 5 systems × 2 alphas.
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	byKey := make(map[string]Result)
	for _, r := range results {
		byKey[r.System+"@"+formatAlpha(r.Alpha)] = r
		if r.EL() < 0 || math.IsNaN(r.EL()) {
			t.Errorf("%s@%v: bad EL %v", r.System, r.Alpha, r.EL())
		}
	}
	// The §6 chain at each α.
	for _, a := range []string{"0.001", "0.01"} {
		chain := []string{"S0PO", "S2PO", "S1PO", "S1SO", "S0SO"}
		for i := 1; i < len(chain); i++ {
			hi := byKey[chain[i-1]+"@"+a].EL()
			lo := byKey[chain[i]+"@"+a].EL()
			if hi <= lo {
				t.Errorf("α=%s: EL(%s)=%v ≤ EL(%s)=%v", a, chain[i-1], hi, chain[i], lo)
			}
		}
	}
	// EL must decrease with α for every system.
	for _, sys := range []string{"S0PO", "S2PO", "S1PO", "S1SO", "S0SO"} {
		if byKey[sys+"@0.001"].EL() <= byKey[sys+"@0.01"].EL() {
			t.Errorf("%s: EL not decreasing in α", sys)
		}
	}
}

func formatAlpha(a float64) string {
	switch a {
	case 0.001:
		return "0.001"
	case 0.01:
		return "0.01"
	default:
		return "other"
	}
}

func TestFigure1MCAgreesWithAnalytic(t *testing.T) {
	results, err := Figure1(fastCfg(), []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if math.IsNaN(r.MC) || math.IsNaN(r.Analytic) {
			continue
		}
		if math.Abs(r.MC-r.Analytic) > 5*r.MCCI+0.05*r.Analytic {
			t.Errorf("%s: MC %v ± %v vs analytic %v", r.System, r.MC, r.MCCI, r.Analytic)
		}
	}
}

func TestFigure2Monotonicity(t *testing.T) {
	results, err := Figure2(fastCfg(), []float64{0.001}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultKappas) {
		t.Fatalf("got %d results", len(results))
	}
	// EL(S2PO) must be non-increasing in κ.
	for i := 1; i < len(results); i++ {
		if results[i].EL() > results[i-1].EL()*(1+1e-9) {
			t.Errorf("EL rose with κ: κ=%v EL=%v vs κ=%v EL=%v",
				results[i].Kappa, results[i].EL(), results[i-1].Kappa, results[i-1].EL())
		}
	}
	// The κ=0 point towers over κ=0.5 — the Figure 2 log-scale cliff.
	if results[0].EL() < 10*elAt(results, 0.5) {
		t.Errorf("κ=0 EL %v not ≫ κ=0.5 EL %v", results[0].EL(), elAt(results, 0.5))
	}
}

func elAt(results []Result, kappa float64) float64 {
	for _, r := range results {
		if r.Kappa == kappa {
			return r.EL()
		}
	}
	return math.NaN()
}

func TestOrderingChainHolds(t *testing.T) {
	for _, alpha := range []float64{0.0001, 0.001, 0.01} {
		rep, err := OrderingChain(fastCfg(), alpha, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Holds {
			t.Errorf("α=%v: %s", alpha, rep.Detail)
		}
	}
}

func TestOrderingChainBreaksAtKappaOne(t *testing.T) {
	// At κ=1, S2PO drops below S1PO: the chain must NOT hold, and the
	// report should say so rather than lie.
	rep, err := OrderingChain(fastCfg(), 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatalf("chain claimed to hold at κ=1: %s", rep.Detail)
	}
	if !strings.Contains(rep.Detail, "BROKEN") {
		t.Fatalf("detail does not flag breakage: %s", rep.Detail)
	}
}

func TestFortifyE4(t *testing.T) {
	rows, err := Fortify(fastCfg(), 0.001, []float64{0, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !rows[0].Outlive {
		t.Errorf("κ=0: fortified PB did not outlive recovered SMR (S2SO=%v, S0SO=%v)",
			rows[0].S2SO, rows[0].S0SO)
	}
	if rows[2].Outlive {
		t.Errorf("κ=1: fortified PB claimed to outlive recovered SMR (S2SO=%v, S0SO=%v)",
			rows[2].S2SO, rows[2].S0SO)
	}
}

func TestAlphaGrowth(t *testing.T) {
	rows, err := AlphaGrowth(0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].AlphaSO < rows[i-1].AlphaSO {
			t.Fatalf("αᵢ decreased at step %d", i+1)
		}
		if rows[i].AlphaPO != rows[0].AlphaPO {
			t.Fatalf("PO α changed at step %d", i+1)
		}
	}
	if rows[50].AlphaSO <= rows[0].AlphaPO {
		t.Error("SO hazard did not grow past PO hazard")
	}
}

func TestAlphaGrowthValidation(t *testing.T) {
	if _, err := AlphaGrowth(-1, 10); err == nil {
		t.Fatal("negative α accepted")
	}
}

func TestFormatResults(t *testing.T) {
	results, err := Figure1(Config{Trials: 0, Seed: 1, LaunchPadFraction: -1}, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	text := FormatResults(results)
	for _, want := range []string{"system", "S0PO", "S0SO", "0.01"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	lines := strings.Count(text, "\n")
	if lines != len(results)+1 {
		t.Errorf("table has %d lines for %d results", lines, len(results))
	}
}

func TestLaunchPadAblation(t *testing.T) {
	// λ=0 (no same-step launch pad) must lengthen S2PO's life and λ=1
	// shorten it, relative to the default ½ — the DESIGN.md §5 knob.
	els := make([]float64, 0, 3)
	for _, lp := range []float64{0, 0.5, 1} {
		cfg := Config{Trials: 0, Seed: 1, LaunchPadFraction: lp}
		res, err := Figure2(cfg, []float64{0.01}, []float64{0.2})
		if err != nil {
			t.Fatal(err)
		}
		els = append(els, res[0].EL())
	}
	if !(els[0] > els[1] && els[1] > els[2]) {
		t.Fatalf("λ ablation out of order: %v", els)
	}
}

// TestSweepsDeterministicAcrossWorkers: every sweep's full result set must
// be bit-identical whether the cells (and their trial shards) run on one
// worker or many — the reproducibility contract of the parallel engine.
func TestSweepsDeterministicAcrossWorkers(t *testing.T) {
	withWorkers := func(w int) Config {
		cfg := fastCfg()
		cfg.Trials = 5000
		cfg.Workers = w
		return cfg
	}
	t.Run("Figure1", func(t *testing.T) {
		base, err := Figure1(withWorkers(1), []float64{0.001, 0.01})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			got, err := Figure1(withWorkers(w), []float64{0.001, 0.01})
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, w, base, got)
		}
	})
	t.Run("Figure2", func(t *testing.T) {
		base, err := Figure2(withWorkers(1), []float64{0.001}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			got, err := Figure2(withWorkers(w), []float64{0.001}, nil)
			if err != nil {
				t.Fatal(err)
			}
			compareResults(t, w, base, got)
		}
	})
	t.Run("OrderingChain", func(t *testing.T) {
		base, err := OrderingChain(withWorkers(1), 0.001, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			got, err := OrderingChain(withWorkers(w), 0.001, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if got.Detail != base.Detail {
				t.Errorf("workers=%d: detail %q vs %q", w, got.Detail, base.Detail)
			}
			for i := range base.ELs {
				if got.ELs[i] != base.ELs[i] {
					t.Errorf("workers=%d: EL[%d] %v vs %v", w, i, got.ELs[i], base.ELs[i])
				}
			}
		}
	})
	t.Run("Fortify", func(t *testing.T) {
		base, err := Fortify(withWorkers(1), 0.001, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8} {
			got, err := Fortify(withWorkers(w), 0.001, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(base) {
				t.Fatalf("workers=%d: %d rows vs %d", w, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Errorf("workers=%d: row %d %+v vs %+v", w, i, got[i], base[i])
				}
			}
		}
	})
}

// compareResults asserts two sweep outputs are identical, NaN-aware (NaN
// marks "not computed", and NaN != NaN under ==).
func compareResults(t *testing.T, workers int, base, got []Result) {
	t.Helper()
	if len(got) != len(base) {
		t.Fatalf("workers=%d: %d results vs %d", workers, len(got), len(base))
	}
	sameFloat := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	for i := range base {
		b, g := base[i], got[i]
		if g.System != b.System || g.Alpha != b.Alpha || g.Kappa != b.Kappa ||
			g.Trials != b.Trials || !sameFloat(g.Analytic, b.Analytic) ||
			!sameFloat(g.MC, b.MC) || !sameFloat(g.MCCI, b.MCCI) {
			t.Errorf("workers=%d: result %d %+v differs from %+v", workers, i, g, b)
		}
	}
}
