package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"fortress/internal/metrics"
)

// CellMetrics pairs one sweep cell's label with the merged metrics snapshot
// of its repetition series. The Counters section is deterministic — a pure
// function of the sweep's seed and grid, identical at any Workers value —
// while Timing, Gauges, Histograms and Traces are wall-clock shaped and
// vary run to run. Trace rings carry a "repN/" prefix naming the repetition
// that recorded them.
type CellMetrics struct {
	Cell     string           `json:"cell"`
	Snapshot metrics.Snapshot `json:"snapshot"`
}

// seriesRegistries allocates one private metrics registry per campaign
// repetition. Per-repetition registries (rather than one shared registry)
// keep the merged snapshot deterministic: each repetition's counters are a
// pure function of its pre-split streams, and the merge folds them in
// repetition order.
func seriesRegistries(reps int) []*metrics.Registry {
	regs := make([]*metrics.Registry, reps)
	for i := range regs {
		regs[i] = metrics.New()
	}
	return regs
}

// mergeRegistries folds per-repetition snapshots into one, in repetition
// order, prefixing each repetition's trace rings with "repN/".
func mergeRegistries(regs []*metrics.Registry) metrics.Snapshot {
	agg := (*metrics.Registry)(nil).Snapshot()
	for i, reg := range regs {
		agg.Merge(reg.Snapshot(), fmt.Sprintf("rep%d/", i))
	}
	return agg
}

// WriteCellMetricsJSON writes per-cell metrics snapshots as an indented JSON
// array — the payload behind the CLIs' -metrics-out flag, dumped next to the
// CSV so a sweep's observability record travels with its results.
func WriteCellMetricsJSON(path string, cells []CellMetrics) error {
	data, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal metrics: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("experiments: write metrics: %w", err)
	}
	return nil
}
