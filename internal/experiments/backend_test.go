package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFaultSweepSMRBitIdenticalAcrossWorkers is the SMR half of the sweep
// determinism contract (and the acceptance bar for the backend axis): an
// SMR-backed fault sweep over the quorum- and rolling-partition presets —
// schedules under which replicas crash, restart and converge through the
// leader-driven catch-up transfer — produces byte-identical CSV at 1, 2
// and 8 workers.
func TestFaultSweepSMRBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []FaultSweepRow {
		t.Helper()
		cfg := smallFaultSweep(workers)
		cfg.Backends = []string{"smr"}
		cfg.Presets = []string{"quorum-partition", "rolling-partition"}
		rows, err := FaultSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	base := run(1)
	if len(base) != 2 {
		t.Fatalf("rows = %d, want 2", len(base))
	}
	for _, r := range base {
		if r.Backend != "smr" {
			t.Fatalf("row backend = %q", r.Backend)
		}
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d rows %+v differ from workers=1 %+v", workers, got, base)
		}
	}
	var a, b bytes.Buffer
	if err := WriteFaultSweepCSV(&a, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteFaultSweepCSV(&b, run(8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("SMR CSV differs between workers=1 and workers=8")
	}
}

// TestFaultSweepDropCellsBitIdenticalAcrossWorkers pins the per-directed-
// pair drop streams: cells with a positive drop rate — previously only
// statistically reproducible, because one shared generator interleaved all
// connections — now reproduce byte-for-byte at any worker count.
func TestFaultSweepDropCellsBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []FaultSweepRow {
		t.Helper()
		cfg := smallFaultSweep(workers)
		cfg.Presets = []string{"none", "lossy"}
		cfg.DropRates = []float64{0.03}
		rows, err := FaultSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	base := run(1)
	if len(base) != 2 {
		t.Fatalf("rows = %d, want 2", len(base))
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d drop-cell rows differ:\n got %+v\nwant %+v", workers, got, base)
		}
	}
	var a, b bytes.Buffer
	if err := WriteFaultSweepCSV(&a, base); err != nil {
		t.Fatal(err)
	}
	if err := WriteFaultSweepCSV(&b, run(8)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("positive-drop CSV differs between workers=1 and workers=8")
	}
}

// TestFaultSweepBackendComparison is the new scenario axis doing its job:
// under the quorum cut the PB tier loses availability (the islanded
// primary cannot commit), while the SMR tier keeps serving through the
// followers left outside the cut, which relay to the leader over intact
// server-server links.
func TestFaultSweepBackendComparison(t *testing.T) {
	cfg := smallFaultSweep(0)
	cfg.Backends = []string{"pb", "smr"}
	cfg.Presets = []string{"quorum-partition"}
	cfg.MaxSteps = 12
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	pb, smr := rows[0], rows[1]
	if pb.Backend != "pb" || smr.Backend != "smr" {
		t.Fatalf("row order: %s, %s", pb.Backend, smr.Backend)
	}
	if smr.Availability < pb.Availability+0.15 {
		t.Errorf("SMR did not measurably out-serve PB under the quorum cut: smr %.4g, pb %.4g",
			smr.Availability, pb.Availability)
	}
}

// TestFaultSweepRejectsUnknownBackend mirrors the preset validation.
func TestFaultSweepRejectsUnknownBackend(t *testing.T) {
	cfg := smallFaultSweep(1)
	cfg.Backends = []string{"raft"}
	if _, err := FaultSweep(cfg); err == nil || !strings.Contains(err.Error(), "raft") {
		t.Fatalf("unknown backend: err = %v", err)
	}
}

// TestLiveCampaignBackendAxis runs one tiny SMR cell through the live
// campaign sweep, checking the axis is plumbed end to end.
func TestLiveCampaignBackendAxis(t *testing.T) {
	cfg := LiveCampaignConfig{
		Chi:      12,
		Reps:     2,
		Seed:     3,
		MaxSteps: 6,
		Backends: []string{"smr"},
		Servers:  2,

		ProxyCounts: []int{2},
		Detectors:   []bool{false},
		Pacings:     []uint64{1},
	}
	rows, err := LiveCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Backend != "smr" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Reps != 2 {
		t.Fatalf("reps = %d", rows[0].Reps)
	}
}
