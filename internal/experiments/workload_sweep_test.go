package experiments

import (
	"math"
	"reflect"
	"testing"
)

// workloadSweepConfig is the acceptance grid for the open-loop workload
// engine: a two-group deployment under the zipf-poisson preset, with a
// pristine cell next to a shard-cut cell. Chi is large enough that no
// repetition is compromised within the horizon, so the two cells replay the
// exact same arrival stream and differ only in the fault schedule.
func workloadSweepConfig(workers int) FaultSweepConfig {
	return FaultSweepConfig{
		Chi:      4096,
		Reps:     2,
		Seed:     7,
		Workers:  workers,
		MaxSteps: 12,
		Groups:   []int{2},
		Presets:  []string{"none", "shard-cut"},
		WorkloadAxes: WorkloadAxes{
			Workloads: []string{"zipf-poisson"},
		},
	}
}

// TestWorkloadSweepBitIdenticalAcrossWorkers is the tentpole's acceptance
// check: an open-loop zipf-poisson sweep over a sharded deployment is
// bit-identical at 1, 2 and 8 workers — latency histograms included — and
// under shard-cut the islanded shard's p99 degrades to the deadline while
// the untouched shard's latency distribution is exactly the pristine cell's.
func TestWorkloadSweepBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []FaultSweepRow {
		t.Helper()
		rows, err := FaultSweep(workloadSweepConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	base := run(1)
	if len(base) != 2 {
		t.Fatalf("rows = %d, want 2", len(base))
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d rows differ from workers=1", workers)
		}
	}
	pristine, cut := base[0], base[1]
	if pristine.Preset != "none" || cut.Preset != "shard-cut" {
		t.Fatalf("row order: %s, %s", pristine.Preset, cut.Preset)
	}
	for _, r := range base {
		// Precondition for the stream-equality claims below: every
		// repetition survives the horizon, so both cells measure all steps.
		if r.Compromised != 0 {
			t.Fatalf("preset %s: %d repetitions compromised — the cells no longer share a stream", r.Preset, r.Compromised)
		}
		if r.Workload != "zipf-poisson" {
			t.Fatalf("preset %s: workload label %q", r.Preset, r.Workload)
		}
		if math.IsNaN(r.P50) || math.IsNaN(r.P99) || math.IsNaN(r.P999) {
			t.Fatalf("preset %s: empty latency columns %g/%g/%g", r.Preset, r.P50, r.P99, r.P999)
		}
		if len(r.ShardP99) != 2 {
			t.Fatalf("preset %s: shard p99 vector %v", r.Preset, r.ShardP99)
		}
	}
	// shard-cut islands the last group for the middle half of the horizon:
	// shard 1's requests get charged the spec deadline (250ms) and its p99
	// collapses toward it, while shard 0 — untouched by the schedule — stays
	// flat: within sampling noise of the pristine cell (cells draw
	// independent streams) and far below the islanded shard.
	if cut.ShardP99[1] <= 2*pristine.ShardP99[1] {
		t.Errorf("islanded shard p99 %g not degraded vs pristine %g", cut.ShardP99[1], pristine.ShardP99[1])
	}
	if cut.ShardP99[1] <= 4*cut.ShardP99[0] {
		t.Errorf("islanded shard p99 %g not ≫ untouched shard %g", cut.ShardP99[1], cut.ShardP99[0])
	}
	if drift := math.Abs(cut.ShardP99[0]-pristine.ShardP99[0]) / pristine.ShardP99[0]; drift > 0.25 {
		t.Errorf("untouched shard p99 not flat: cut %g vs pristine %g (drift %g)", cut.ShardP99[0], pristine.ShardP99[0], drift)
	}
	if cut.P99 <= pristine.P99 {
		t.Errorf("aggregate p99 under shard-cut %g not above pristine %g", cut.P99, pristine.P99)
	}
	if cut.ShardAvailability[0] != 1 || pristine.ShardAvailability[0] != 1 {
		t.Errorf("untouched shard availability not 1: cut %g, pristine %g", cut.ShardAvailability[0], pristine.ShardAvailability[0])
	}
}
