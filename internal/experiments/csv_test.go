package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	results := []Result{
		{System: "S1PO", Alpha: 0.01, Kappa: 0.5, Analytic: 99.0, MC: 98.5, MCCI: 1.2, Trials: 1000},
		{System: "S2SO", Alpha: 0.01, Kappa: 0.5, Analytic: math.NaN(), MC: 321, MCCI: 2, Trials: 1000},
		{System: "S0PO", Alpha: 0.0001, Kappa: 0.5, Analytic: math.Inf(1), MC: math.NaN()},
	}
	var b strings.Builder
	if err := WriteCSV(&b, results); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "system,alpha,kappa,analytic_el,mc_el,mc_ci95,trials" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "S1PO,0.01,0.5,99,98.5,1.2,1000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// NaN analytic renders empty; the two commas are adjacent.
	if !strings.Contains(lines[2], "S2SO,0.01,0.5,,321,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
	if !strings.Contains(lines[3], ",inf,") {
		t.Fatalf("row 3 = %q", lines[3])
	}
}

func TestWriteFortifyCSV(t *testing.T) {
	rows := []FortifyComparison{
		{Alpha: 0.001, Kappa: 0, S2SO: 595.2, S2SOCI: 2.1, S0SO: 396.7, Outlive: true},
		{Alpha: 0.001, Kappa: 1, S2SO: 339.7, S2SOCI: 1.6, S0SO: 396.7, Outlive: false},
	}
	var b strings.Builder
	if err := WriteFortifyCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("verdicts missing:\n%s", out)
	}
	if !strings.HasPrefix(out, "alpha,kappa,") {
		t.Fatalf("header wrong:\n%s", out)
	}
}

func TestWriteAlphaGrowthCSV(t *testing.T) {
	rows, err := AlphaGrowth(0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteAlphaGrowthCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Fatalf("first data row = %q", lines[1])
	}
}

func TestCSVRoundTripsFigure1(t *testing.T) {
	results, err := Figure1(Config{Trials: 0, Seed: 1, LaunchPadFraction: -1}, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(results)+1 {
		t.Fatalf("%d lines for %d results", len(lines), len(results))
	}
	for _, sys := range []string{"S0PO", "S2PO", "S1PO", "S1SO", "S0SO"} {
		if !strings.Contains(b.String(), sys+",") {
			t.Errorf("system %s missing from CSV", sys)
		}
	}
}
