package experiments

import (
	"reflect"
	"testing"
)

// TestFaultSweepMetricsDeterministicAcrossWorkers pins the -metrics-out
// determinism contract: the merged Stable-counter section of every cell's
// snapshot is a pure function of (Seed, grid, Reps) — identical at workers
// 1, 2 and 8 — and collection itself never perturbs the sweep's results.
func TestFaultSweepMetricsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("live fault-sweep repetitions in -short mode")
	}
	base := FaultSweepConfig{
		Reps:           2,
		Seed:           11,
		MaxSteps:       8,
		Presets:        []string{"rolling-partition"},
		CollectMetrics: true,
	}
	var want []map[string]uint64
	var wantRows []FaultSweepRow
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		rows, err := FaultSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]map[string]uint64, len(rows))
		for i, r := range rows {
			if r.Metrics == nil {
				t.Fatalf("workers=%d: row %d has no metrics despite CollectMetrics", workers, i)
			}
			got[i] = r.Metrics.Counters
			if got[i]["campaign_runs_total"] != uint64(base.Reps) {
				t.Fatalf("workers=%d row %d: campaign_runs_total = %d, want %d",
					workers, i, got[i]["campaign_runs_total"], base.Reps)
			}
			// Collection must not bend the sweep itself: strip the
			// observational payload and compare outcomes across workers too.
			rows[i].Metrics = nil
		}
		if want == nil {
			want, wantRows = got, rows
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stable counters differ between workers=1 and workers=%d:\n got %v\nwant %v",
				workers, got, want)
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Errorf("sweep rows differ between workers=1 and workers=%d", workers)
		}
	}
}
