// Package markov implements absorbing Markov chain analysis, the analytic
// tool the paper uses (§5) to compute expected system lifetimes when the
// state space is small.
//
// For an absorbing chain with transient transition submatrix Q, the expected
// number of steps before absorption starting from transient state s is
// t = (I − Q)⁻¹ · 1 evaluated at s (the row sums of the fundamental matrix).
package markov

import (
	"errors"
	"fmt"
	"math"

	"fortress/internal/matrix"
)

// ErrNoAbsorbing is returned when a chain has no absorbing state reachable
// with positive probability, so the expected absorption time is infinite.
var ErrNoAbsorbing = errors.New("markov: no absorbing state reachable")

// Chain is an absorbing Markov chain under construction. States are dense
// integer indices created by AddState; transitions carry probabilities that
// must sum to 1 (within tolerance) for every transient state.
type Chain struct {
	names     []string
	absorbing []bool
	trans     []map[int]float64
}

// NewChain returns an empty chain.
func NewChain() *Chain {
	return &Chain{}
}

// AddState adds a state with a diagnostic name and reports its index.
// Absorbing states need (and allow) no outgoing transitions.
func (c *Chain) AddState(name string, absorbing bool) int {
	c.names = append(c.names, name)
	c.absorbing = append(c.absorbing, absorbing)
	c.trans = append(c.trans, make(map[int]float64))
	return len(c.names) - 1
}

// NumStates returns the number of states added so far.
func (c *Chain) NumStates() int { return len(c.names) }

// Name returns the diagnostic name of state s.
func (c *Chain) Name(s int) string { return c.names[s] }

// SetTransition records P(from → to) = p, accumulating if called repeatedly
// for the same pair (convenient when several events lead to one state).
func (c *Chain) SetTransition(from, to int, p float64) error {
	if from < 0 || from >= len(c.names) || to < 0 || to >= len(c.names) {
		return fmt.Errorf("markov: transition %d→%d out of range [0,%d)", from, to, len(c.names))
	}
	if c.absorbing[from] {
		return fmt.Errorf("markov: state %q is absorbing and cannot have outgoing transitions", c.names[from])
	}
	if p < 0 || p > 1+1e-12 || math.IsNaN(p) {
		return fmt.Errorf("markov: invalid probability %v for %q→%q", p, c.names[from], c.names[to])
	}
	if p == 0 {
		return nil
	}
	c.trans[from][to] += p
	return nil
}

// validate checks that every transient state's outgoing probabilities sum
// to 1 within tolerance.
func (c *Chain) validate() error {
	const tol = 1e-9
	for s, m := range c.trans {
		if c.absorbing[s] {
			continue
		}
		var sum float64
		for _, p := range m {
			sum += p
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("markov: state %q outgoing probabilities sum to %v, want 1", c.names[s], sum)
		}
	}
	return nil
}

// ExpectedSteps returns, for the given start state, the expected number of
// steps before the chain is absorbed. A start in an absorbing state yields 0.
func (c *Chain) ExpectedSteps(start int) (float64, error) {
	all, err := c.ExpectedStepsAll()
	if err != nil {
		return 0, err
	}
	if start < 0 || start >= len(all) {
		return 0, fmt.Errorf("markov: start state %d out of range [0,%d)", start, len(all))
	}
	return all[start], nil
}

// ExpectedStepsAll returns the expected absorption time from every state
// (0 for absorbing states), solving (I − Q)·t = 1 once.
func (c *Chain) ExpectedStepsAll() ([]float64, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	// Map transient states to dense indices.
	transIdx := make([]int, len(c.names))
	var transient []int
	for s := range c.names {
		if c.absorbing[s] {
			transIdx[s] = -1
			continue
		}
		transIdx[s] = len(transient)
		transient = append(transient, s)
	}
	out := make([]float64, len(c.names))
	if len(transient) == 0 {
		return out, nil
	}

	n := len(transient)
	iq, err := matrix.Identity(n)
	if err != nil {
		return nil, err
	}
	for i, s := range transient {
		for to, p := range c.trans[s] {
			if j := transIdx[to]; j >= 0 {
				iq.Set(i, j, iq.At(i, j)-p)
			}
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	t, err := iq.Solve(ones)
	if err != nil {
		if errors.Is(err, matrix.ErrSingular) {
			return nil, ErrNoAbsorbing
		}
		return nil, err
	}
	for i, s := range transient {
		if t[i] < 0 || math.IsNaN(t[i]) || math.IsInf(t[i], 0) {
			return nil, fmt.Errorf("markov: ill-conditioned chain, t[%q] = %v", c.names[s], t[i])
		}
		out[s] = t[i]
	}
	return out, nil
}

// AbsorptionProbabilities returns, for the given start state, the probability
// of being absorbed in each absorbing state, as a map keyed by state index.
func (c *Chain) AbsorptionProbabilities(start int) (map[int]float64, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	transIdx := make([]int, len(c.names))
	var transient, absorbing []int
	for s := range c.names {
		if c.absorbing[s] {
			transIdx[s] = -1
			absorbing = append(absorbing, s)
			continue
		}
		transIdx[s] = len(transient)
		transient = append(transient, s)
	}
	if start < 0 || start >= len(c.names) {
		return nil, fmt.Errorf("markov: start state %d out of range", start)
	}
	res := make(map[int]float64, len(absorbing))
	if c.absorbing[start] {
		res[start] = 1
		return res, nil
	}
	n := len(transient)
	iq, err := matrix.Identity(n)
	if err != nil {
		return nil, err
	}
	for i, s := range transient {
		for to, p := range c.trans[s] {
			if j := transIdx[to]; j >= 0 {
				iq.Set(i, j, iq.At(i, j)-p)
			}
		}
	}
	// For each absorbing state a: solve (I−Q)·b = R[:,a] where R[s][a] is the
	// one-step probability from transient s into a.
	for _, a := range absorbing {
		r := make([]float64, n)
		for i, s := range transient {
			r[i] = c.trans[s][a]
		}
		b, err := iq.Solve(r)
		if err != nil {
			if errors.Is(err, matrix.ErrSingular) {
				return nil, ErrNoAbsorbing
			}
			return nil, err
		}
		res[a] = b[transIdx[start]]
	}
	return res, nil
}

// Geometric returns the expected number of whole steps that elapse before the
// first success of a per-step Bernoulli(p) hazard, i.e. (1−p)/p. This is the
// paper's EL for a single-state PO system. It returns +Inf for p = 0.
func Geometric(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return 0
	}
	return (1 - p) / p
}
