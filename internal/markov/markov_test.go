package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func TestGeometric(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 1},
		{0.1, 9},
		{1, 0},
		{0.01, 99},
	}
	for _, c := range cases {
		if got := Geometric(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geometric(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(Geometric(0), 1) {
		t.Error("Geometric(0) should be +Inf")
	}
}

// A two-state chain: transient -> absorbed with prob p each step.
// Expected steps to absorption = 1/p; the paper's EL counts whole elapsed
// steps, i.e. 1/p - 1 = (1-p)/p, handled by the callers via Geometric.
func TestSingleHazard(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.01} {
		c := NewChain()
		alive := c.AddState("alive", false)
		dead := c.AddState("dead", true)
		if err := c.SetTransition(alive, dead, p); err != nil {
			t.Fatal(err)
		}
		if err := c.SetTransition(alive, alive, 1-p); err != nil {
			t.Fatal(err)
		}
		got, err := c.ExpectedSteps(alive)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1/p) > 1e-9/p {
			t.Errorf("p=%v: ExpectedSteps = %v, want %v", p, got, 1/p)
		}
	}
}

func TestAbsorbingStartIsZero(t *testing.T) {
	c := NewChain()
	a := c.AddState("a", true)
	got, err := c.ExpectedSteps(a)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("absorbing start = %v", got)
	}
}

// Gambler's-ruin-like chain with known solution: states 0..3, 3 absorbing,
// from i move to i+1 w.p. 1. Expected steps from 0 is 3.
func TestDeterministicWalk(t *testing.T) {
	c := NewChain()
	var states []int
	for i := 0; i < 4; i++ {
		states = append(states, c.AddState("", i == 3))
	}
	for i := 0; i < 3; i++ {
		if err := c.SetTransition(states[i], states[i+1], 1); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.ExpectedSteps(states[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("walk expected steps = %v, want 3", got)
	}
}

// Two-phase chain: alive -> half-broken w.p. q, half-broken -> dead w.p. r.
// E[alive] = 1/q + 1/r.
func TestTwoPhase(t *testing.T) {
	q, r := 0.2, 0.05
	c := NewChain()
	alive := c.AddState("alive", false)
	half := c.AddState("half", false)
	dead := c.AddState("dead", true)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.SetTransition(alive, half, q))
	must(c.SetTransition(alive, alive, 1-q))
	must(c.SetTransition(half, dead, r))
	must(c.SetTransition(half, half, 1-r))
	got, err := c.ExpectedSteps(alive)
	if err != nil {
		t.Fatal(err)
	}
	want := 1/q + 1/r
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("two-phase = %v, want %v", got, want)
	}
}

func TestValidationRejectsBadRowSums(t *testing.T) {
	c := NewChain()
	a := c.AddState("a", false)
	_ = c.AddState("b", true)
	if err := c.SetTransition(a, a, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExpectedSteps(a); err == nil {
		t.Fatal("row sum 0.5 accepted")
	}
}

func TestSetTransitionErrors(t *testing.T) {
	c := NewChain()
	a := c.AddState("a", false)
	abs := c.AddState("abs", true)
	if err := c.SetTransition(abs, a, 0.5); err == nil {
		t.Fatal("transition out of absorbing state accepted")
	}
	if err := c.SetTransition(a, 99, 0.5); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := c.SetTransition(-1, a, 0.5); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if err := c.SetTransition(a, a, -0.1); err == nil {
		t.Fatal("negative probability accepted")
	}
	if err := c.SetTransition(a, a, math.NaN()); err == nil {
		t.Fatal("NaN probability accepted")
	}
	if err := c.SetTransition(a, abs, 0); err != nil {
		t.Fatal("zero probability should be a no-op, not an error")
	}
}

func TestTransitionAccumulates(t *testing.T) {
	c := NewChain()
	a := c.AddState("a", false)
	d := c.AddState("d", true)
	// Two separate events each 0.25 into the same absorbing state.
	if err := c.SetTransition(a, d, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition(a, d, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition(a, a, 0.5); err != nil {
		t.Fatal(err)
	}
	got, err := c.ExpectedSteps(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("accumulated chain = %v, want 2", got)
	}
}

func TestNoAbsorbingReachable(t *testing.T) {
	c := NewChain()
	a := c.AddState("a", false)
	b := c.AddState("b", false)
	_ = c.AddState("dead", true)
	if err := c.SetTransition(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition(b, a, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExpectedSteps(a); !errors.Is(err, ErrNoAbsorbing) {
		t.Fatalf("want ErrNoAbsorbing, got %v", err)
	}
}

func TestAbsorptionProbabilities(t *testing.T) {
	// alive splits 30/70 between two absorbing states each step (plus stay).
	c := NewChain()
	alive := c.AddState("alive", false)
	d1 := c.AddState("d1", true)
	d2 := c.AddState("d2", true)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.SetTransition(alive, d1, 0.03))
	must(c.SetTransition(alive, d2, 0.07))
	must(c.SetTransition(alive, alive, 0.9))
	probs, err := c.AbsorptionProbabilities(alive)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[d1]-0.3) > 1e-9 || math.Abs(probs[d2]-0.7) > 1e-9 {
		t.Fatalf("absorption probs = %v", probs)
	}
	// From an absorbing start: itself with probability 1.
	probs, err = c.AbsorptionProbabilities(d1)
	if err != nil {
		t.Fatal(err)
	}
	if probs[d1] != 1 {
		t.Fatalf("absorbing start probs = %v", probs)
	}
}

func TestExpectedStepsOutOfRange(t *testing.T) {
	c := NewChain()
	a := c.AddState("a", false)
	d := c.AddState("d", true)
	if err := c.SetTransition(a, d, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExpectedSteps(5); err == nil {
		t.Fatal("out-of-range start accepted")
	}
}

// Property: for random birth-death absorbing chains, the analytic expected
// absorption time matches a Monte-Carlo estimate.
func TestExpectedStepsMatchesSimulationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("monte-carlo cross-check skipped in -short")
	}
	r := xrand.New(123)
	prop := func(seed uint16) bool {
		rr := xrand.New(uint64(seed)*2654435761 + 1)
		n := 2 + rr.Intn(4) // transient states
		c := NewChain()
		states := make([]int, n+1)
		for i := 0; i <= n; i++ {
			states[i] = c.AddState("", i == n)
		}
		// From state i: advance w.p. p_i, stay otherwise.
		ps := make([]float64, n)
		var want float64
		for i := 0; i < n; i++ {
			ps[i] = 0.2 + 0.6*rr.Float64()
			if err := c.SetTransition(states[i], states[i+1], ps[i]); err != nil {
				return false
			}
			if err := c.SetTransition(states[i], states[i], 1-ps[i]); err != nil {
				return false
			}
			want += 1 / ps[i]
		}
		got, err := c.ExpectedSteps(states[0])
		if err != nil {
			return false
		}
		if math.Abs(got-want) > 1e-9*want {
			return false
		}
		// Monte-Carlo cross-check.
		const trials = 2000
		var sum float64
		for tr := 0; tr < trials; tr++ {
			s, steps := 0, 0
			for s < n {
				if r.Bernoulli(ps[s]) {
					s++
				}
				steps++
			}
			sum += float64(steps)
		}
		mc := sum / trials
		return math.Abs(mc-want) < 0.15*want+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExpectedSteps100(b *testing.B) {
	c := NewChain()
	const n = 100
	states := make([]int, n+1)
	for i := 0; i <= n; i++ {
		states[i] = c.AddState("", i == n)
	}
	for i := 0; i < n; i++ {
		if err := c.SetTransition(states[i], states[i+1], 0.3); err != nil {
			b.Fatal(err)
		}
		if err := c.SetTransition(states[i], states[i], 0.7); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ExpectedSteps(states[0]); err != nil {
			b.Fatal(err)
		}
	}
}
