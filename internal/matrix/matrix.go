// Package matrix implements the small dense linear algebra needed by the
// absorbing-Markov-chain analysis: LU-style Gaussian elimination with partial
// pivoting for solving A·x = b and inverting (I − Q).
//
// The state spaces in this repository are tiny (tens to a few thousand
// states), so a straightforward O(n³) dense solver is both adequate and easy
// to audit.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when elimination encounters a pivot that is
// numerically zero, i.e. the system has no unique solution.
var ErrSingular = errors.New("matrix: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates a rows×cols zero matrix.
func NewDense(rows, cols int) (*Dense, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("matrix: invalid dimensions %dx%d", rows, cols)
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) (*Dense, error) {
	m, err := NewDense(n, n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := &Dense{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Sub returns m − n. The shapes must match.
func (m *Dense) Sub(n *Dense) (*Dense, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, fmt.Errorf("matrix: shape mismatch %dx%d vs %dx%d",
			m.rows, m.cols, n.rows, n.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= n.data[i]
	}
	return out, nil
}

// Mul returns the product m·n.
func (m *Dense) Mul(n *Dense) (*Dense, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d",
			m.rows, m.cols, n.rows, n.cols)
	}
	out, err := NewDense(m.rows, n.cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.data[i*out.cols+j] += a * n.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns the product m·v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by vector of length %d",
			m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var sum float64
		for j := 0; j < m.cols; j++ {
			sum += m.At(i, j) * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// Solve returns x such that m·x = b, using Gaussian elimination with partial
// pivoting. m must be square; m and b are not modified.
func (m *Dense) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: Solve needs a square matrix, got %dx%d", m.rows, m.cols)
	}
	if len(b) != m.rows {
		return nil, fmt.Errorf("matrix: Solve dimension mismatch: %dx%d vs b of length %d",
			m.rows, m.cols, len(b))
	}
	n := m.rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.data[col*n+j], a.data[pivot*n+j] = a.data[pivot*n+j], a.data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			a.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				a.data[r*n+j] -= f * a.data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= a.At(i, j) * x[j]
		}
		x[i] = sum / a.At(i, i)
	}
	return x, nil
}

// Inverse returns m⁻¹ by solving against each unit vector.
func (m *Dense) Inverse() (*Dense, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: Inverse needs a square matrix, got %dx%d", m.rows, m.cols)
	}
	n := m.rows
	out, err := NewDense(n, n)
	if err != nil {
		return nil, err
	}
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := m.Solve(e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}
