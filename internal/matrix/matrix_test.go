package matrix

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		if _, err := NewDense(dims[0], dims[1]); err == nil {
			t.Errorf("NewDense(%d,%d) succeeded", dims[0], dims[1])
		}
	}
}

func TestIdentity(t *testing.T) {
	m, err := Identity(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	m, _ := NewDense(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := m.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	m, _ := NewDense(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := m.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m, _ := NewDense(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Solve([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	m, _ := NewDense(2, 3)
	if _, err := m.Solve([]float64{1, 2}); err == nil {
		t.Fatal("non-square Solve succeeded")
	}
	sq, _ := NewDense(2, 2)
	if _, err := sq.Solve([]float64{1}); err == nil {
		t.Fatal("wrong-length b accepted")
	}
}

func TestSolveDoesNotModifyInputs(t *testing.T) {
	m, _ := NewDense(2, 2)
	m.Set(0, 0, 4)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	b := []float64{1, 2}
	if _, err := m.Solve(b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 4 || m.At(1, 1) != 3 || b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve modified its inputs")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := xrand.New(8)
	const n = 6
	m, _ := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.Float64()-0.5)
		}
		// Diagonal dominance guarantees invertibility.
		m.Set(i, i, m.At(i, i)+float64(n))
	}
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := m.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-9) {
				t.Fatalf("M·M⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestMulShapes(t *testing.T) {
	a, _ := NewDense(2, 3)
	b, _ := NewDense(3, 4)
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 2 || c.Cols() != 4 {
		t.Fatalf("product shape %dx%d", c.Rows(), c.Cols())
	}
	if _, err := b.Mul(a); err == nil {
		t.Fatal("incompatible Mul succeeded")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("bad MulVec length accepted")
	}
}

func TestSub(t *testing.T) {
	a, _ := Identity(2)
	b, _ := Identity(2)
	d, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if d.At(i, j) != 0 {
				t.Fatal("I - I != 0")
			}
		}
	}
	c, _ := NewDense(2, 3)
	if _, err := a.Sub(c); err == nil {
		t.Fatal("shape-mismatched Sub accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	a, _ := Identity(2)
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// Property: for random well-conditioned systems, A·x = b holds after Solve.
func TestSolveResidualProperty(t *testing.T) {
	r := xrand.New(55)
	prop := func(seed uint16) bool {
		rr := xrand.New(uint64(seed) ^ r.Uint64())
		n := 2 + rr.Intn(8)
		m, _ := NewDense(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			b[i] = rr.Float64() * 10
			for j := 0; j < n; j++ {
				m.Set(i, j, rr.Float64()-0.5)
			}
			m.Set(i, i, m.At(i, i)+float64(n)) // diagonally dominant
		}
		x, err := m.Solve(b)
		if err != nil {
			return false
		}
		got, err := m.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEq(got[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve32(b *testing.B) {
	r := xrand.New(2)
	const n = 32
	m, _ := NewDense(n, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = r.Float64()
		for j := 0; j < n; j++ {
			m.Set(i, j, r.Float64())
		}
		m.Set(i, i, m.At(i, i)+n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
