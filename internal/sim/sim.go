// Package sim is the deterministic parallel Monte-Carlo engine: it shards
// trial budgets into a fixed number of logical shards, runs the shards on a
// bounded worker pool, and merges per-shard results in shard order, so that
// a given (seed, trials) pair produces bit-identical estimates whether it
// runs on 1 worker or 64.
//
// The determinism recipe has three parts:
//
//  1. The shard layout is a pure function of the trial budget and the fixed
//     logical shard count — never of the worker count.
//  2. One xrand.RNG is derived per shard with Split() in a fixed order
//     before any work is dispatched, so the random streams each shard
//     consumes are independent of scheduling.
//  3. Per-shard results (hit counts for the PO step-hazard path, Welford
//     accumulators for the SO lifetime path) are merged in shard order;
//     integer hit counts sum exactly, and stats.Accumulator.Merge folds
//     floating-point state in a fixed order.
//
// Workers defaults to runtime.GOMAXPROCS(0); the worker pool only decides
// how many shards are in flight at once, never what any shard computes.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"fortress/internal/model"
	"fortress/internal/stats"
	"fortress/internal/xrand"
)

// DefaultShards is the fixed logical shard count. It is deliberately larger
// than any plausible core count so that the work splits evenly on machines
// of any size, while staying small enough that per-shard overhead (one RNG
// split, one accumulator) is negligible against Monte-Carlo budgets of 10⁴+.
const DefaultShards = 64

// Config tunes the engine. The zero value is ready to use.
type Config struct {
	// Shards is the logical shard count. Changing it changes which random
	// stream each trial draws from (and therefore the exact estimate), so it
	// is part of a run's reproducibility key alongside the seed; the default
	// DefaultShards is what the CLI and experiments use. Zero or negative
	// selects the default.
	Shards int
	// Workers bounds how many shards run concurrently. It never affects
	// results, only wall-clock time. Zero or negative selects
	// runtime.GOMAXPROCS(0).
	Workers int
}

func (c Config) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return DefaultShards
}

func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shardTrials splits a trial budget across n shards as evenly as possible:
// the first trials%n shards get one extra trial. The layout depends only on
// (trials, n).
func shardTrials(trials uint64, n int) []uint64 {
	out := make([]uint64, n)
	base := trials / uint64(n)
	extra := trials % uint64(n)
	for i := range out {
		out[i] = base
		if uint64(i) < extra {
			out[i]++
		}
	}
	return out
}

// SplitRNGs derives n independent generators from rng, in index order,
// before any work is dispatched. The parent rng is advanced exactly n
// times regardless of how much of the derived work later runs, so the
// stream layout is a pure function of n — the pre-split every deterministic
// fan-out (trial shards here, experiment cells in callers) relies on.
func SplitRNGs(rng *xrand.RNG, n int) []*xrand.RNG {
	out := make([]*xrand.RNG, n)
	for i := range out {
		out[i] = rng.Split()
	}
	return out
}

// ForEach runs fn(i) for every i in [0, n) on a pool of at most `workers`
// goroutines (workers <= 0 selects runtime.GOMAXPROCS(0)). All n calls are
// attempted; if any fail, the error with the smallest index is returned, so
// the reported failure is deterministic under any schedule.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EstimatePO estimates the EL of a PO system by sharding the step-hazard
// trials: per-shard hit counts are summed (exactly) in shard order, so the
// estimate equals a single-threaded run over the same shard streams.
func EstimatePO(sys model.StepSystem, trials uint64, rng *xrand.RNG, cfg Config) (model.Estimate, error) {
	if trials == 0 {
		return model.Estimate{}, fmt.Errorf("sim: EstimatePO needs trials > 0")
	}
	shards := shardTrials(trials, cfg.shardCount())
	rngs := SplitRNGs(rng, len(shards))
	hits := make([]uint64, len(shards))
	err := ForEach(len(shards), cfg.workerCount(), func(i int) error {
		if shards[i] == 0 {
			return nil
		}
		h, err := model.POHits(sys, shards[i], rngs[i])
		hits[i] = h
		return err
	})
	if err != nil {
		return model.Estimate{}, err
	}
	var total uint64
	for _, h := range hits {
		total += h
	}
	return model.EstimateFromHits(sys.Name(), total, trials), nil
}

// EstimateSO estimates the EL of an SO system by sharding the lifetime
// trials: per-shard Welford accumulators are folded in shard order with
// stats.Accumulator.Merge, so the floating-point reduction order — and the
// resulting estimate — is independent of the worker count.
func EstimateSO(sys model.LifetimeSystem, trials uint64, rng *xrand.RNG, cfg Config) (model.Estimate, error) {
	if trials == 0 {
		return model.Estimate{}, fmt.Errorf("sim: EstimateSO needs trials > 0")
	}
	shards := shardTrials(trials, cfg.shardCount())
	rngs := SplitRNGs(rng, len(shards))
	accs := make([]stats.Accumulator, len(shards))
	err := ForEach(len(shards), cfg.workerCount(), func(i int) error {
		if shards[i] == 0 {
			return nil
		}
		acc, err := model.SOAccumulate(sys, shards[i], rngs[i])
		accs[i] = acc
		return err
	})
	if err != nil {
		return model.Estimate{}, err
	}
	var merged stats.Accumulator
	for _, acc := range accs {
		merged.Merge(acc)
	}
	return model.EstimateFromAccumulator(sys.Name(), merged), nil
}

// Estimator evaluates any of the six systems with the appropriate sharded
// Monte-Carlo method — the parallel counterpart of model.Estimator.
func Estimator(sys model.System, trials uint64, rng *xrand.RNG, cfg Config) (model.Estimate, error) {
	switch s := sys.(type) {
	case model.StepSystem:
		return EstimatePO(s, trials, rng, cfg)
	case model.LifetimeSystem:
		return EstimateSO(s, trials, rng, cfg)
	default:
		return model.Estimate{}, fmt.Errorf("sim: %s supports no Monte-Carlo method", sys.Name())
	}
}
