package sim

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"fortress/internal/model"
	"fortress/internal/xrand"
)

// TestEstimatesBitIdenticalAcrossWorkers is the engine's core contract: for
// every one of the six systems, the estimate from a given (seed, trials)
// pair is bit-identical — every field, including the floating-point EL and
// CI — whether the shards run on 1, 2 or 8 workers.
func TestEstimatesBitIdenticalAcrossWorkers(t *testing.T) {
	const trials = 20001 // deliberately not divisible by the shard count
	p := model.DefaultParams(0.01, 0.5)
	for _, sys := range model.AllSystems(p) {
		base, err := Estimator(sys, trials, xrand.New(42), Config{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		for _, workers := range []int{2, 8} {
			got, err := Estimator(sys, trials, xrand.New(42), Config{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sys.Name(), workers, err)
			}
			if got != base {
				t.Errorf("%s: workers=%d estimate %+v differs from workers=1 %+v",
					sys.Name(), workers, got, base)
			}
		}
	}
}

// TestStaggeredBitIdenticalAcrossWorkers covers the seventh lifetime system,
// which is not part of AllSystems.
func TestStaggeredBitIdenticalAcrossWorkers(t *testing.T) {
	sys := model.S0Staggered{P: model.DefaultParams(0.01, 0)}
	base, err := EstimateSO(sys, 5000, xrand.New(7), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := EstimateSO(sys, 5000, xrand.New(7), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("workers=%d estimate %+v differs from workers=1 %+v", workers, got, base)
		}
	}
}

// TestAgreesWithSerialEstimator checks the sharded estimates land where the
// single-stream estimator does, statistically: different random streams,
// same distribution.
func TestAgreesWithSerialEstimator(t *testing.T) {
	const trials = 100000
	p := model.DefaultParams(0.01, 0.5)
	for _, sys := range model.AllSystems(p) {
		serial, err := model.Estimator(sys, trials, xrand.New(1))
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		sharded, err := Estimator(sys, trials, xrand.New(1), Config{})
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if math.IsInf(serial.EL, 1) || math.IsInf(sharded.EL, 1) {
			continue // hazard below resolution either way; nothing to compare
		}
		if !serial.Summary().Overlaps(sharded.Summary()) {
			t.Errorf("%s: serial %v ± %v vs sharded %v ± %v do not overlap",
				sys.Name(), serial.EL, serial.CI95, sharded.EL, sharded.CI95)
		}
	}
}

// TestTrialsFewerThanShards: tiny budgets leave most shards empty but must
// still produce the full trial count, deterministically.
func TestTrialsFewerThanShards(t *testing.T) {
	sys := model.S1SO{P: model.DefaultParams(0.01, 0)}
	base, err := EstimateSO(sys, 5, xrand.New(3), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Trials != 5 {
		t.Fatalf("trials = %d, want 5", base.Trials)
	}
	got, err := EstimateSO(sys, 5, xrand.New(3), Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("workers=8 %+v differs from workers=1 %+v", got, base)
	}
}

func TestZeroTrialsRejected(t *testing.T) {
	p := model.DefaultParams(0.01, 0.5)
	if _, err := EstimatePO(model.S1PO{P: p}, 0, xrand.New(1), Config{}); err == nil {
		t.Error("EstimatePO accepted zero trials")
	}
	if _, err := EstimateSO(model.S1SO{P: p}, 0, xrand.New(1), Config{}); err == nil {
		t.Error("EstimateSO accepted zero trials")
	}
}

func TestInvalidParamsSurface(t *testing.T) {
	p := model.DefaultParams(0.01, 0.5)
	p.Chi = 0
	if _, err := Estimator(model.S1SO{P: p}, 1000, xrand.New(1), Config{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestShardTrialsLayout(t *testing.T) {
	for _, tc := range []struct {
		trials uint64
		n      int
	}{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100001, 64},
	} {
		shards := shardTrials(tc.trials, tc.n)
		if len(shards) != tc.n {
			t.Fatalf("len = %d, want %d", len(shards), tc.n)
		}
		var sum uint64
		for i, s := range shards {
			sum += s
			if i > 0 && s > shards[i-1] {
				t.Errorf("trials=%d n=%d: shard %d (%d) larger than shard %d (%d)",
					tc.trials, tc.n, i, s, i-1, shards[i-1])
			}
		}
		if sum != tc.trials {
			t.Errorf("trials=%d n=%d: shards sum to %d", tc.trials, tc.n, sum)
		}
	}
}

// TestForEachReturnsLowestIndexError: the reported error must not depend on
// which worker hits its failure first.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(20, workers, func(i int) error {
			if i == 3 || i == 17 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: got %v, want cell 3's error", workers, err)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	counts := make([]int, n)
	err := ForEach(n, 7, func(i int) error {
		counts[i]++ // safe: each index is dispatched exactly once
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestEstimatorRejectsUnknownSystem(t *testing.T) {
	if _, err := Estimator(analyticOnly{}, 100, xrand.New(1), Config{}); err == nil {
		t.Error("system without a Monte-Carlo method accepted")
	}
}

type analyticOnly struct{}

func (analyticOnly) Name() string                 { return "analytic-only" }
func (analyticOnly) AnalyticEL() (float64, error) { return 0, errors.New("n/a") }
