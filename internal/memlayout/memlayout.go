// Package memlayout simulates the randomized-address-space defence that the
// paper's attack model targets (§2.1).
//
// A real deployment randomizes stack/heap/GOT base addresses with a secret
// key; a code-injection exploit must embed the correct addresses, so an
// attempt built with the wrong key crashes the victim process, and a forking
// daemon respawns a child with the same key (start-up-only) or the current
// key (after re-randomization). This package reproduces exactly that
// machinery — the only properties the paper's evaluation depends on are the
// key entropy χ, the crash-on-wrong-key oracle, and the respawn loop.
package memlayout

import (
	"errors"
	"fmt"
	"sync"

	"fortress/internal/keyspace"
	"fortress/internal/xrand"
)

// ErrCrashed is returned when interacting with a crashed process.
var ErrCrashed = errors.New("memlayout: process crashed")

// ProbeResult is the outcome of delivering an exploit attempt to a process.
type ProbeResult int

const (
	// ProbeCrashed: the exploit used a wrong key; the process died. The
	// attacker observes this through its connection closing.
	ProbeCrashed ProbeResult = iota + 1
	// ProbeCompromised: the exploit used the correct key; the attacker now
	// controls the process.
	ProbeCompromised
	// ProbeRejected: the request never reached a vulnerable code path (e.g.
	// a proxy filtered it); the process survives un-compromised.
	ProbeRejected
)

// String implements fmt.Stringer.
func (r ProbeResult) String() string {
	switch r {
	case ProbeCrashed:
		return "crashed"
	case ProbeCompromised:
		return "compromised"
	case ProbeRejected:
		return "rejected"
	default:
		return fmt.Sprintf("ProbeResult(%d)", int(r))
	}
}

// Process is one simulated OS process whose address layout is derived from a
// randomization key. It is safe for concurrent use.
type Process struct {
	mu          sync.Mutex
	key         keyspace.Key
	crashed     bool
	compromised bool
	onCrash     []func()
}

// NewProcess creates a process randomized with key.
func NewProcess(key keyspace.Key) *Process {
	return &Process{key: key}
}

// Key returns the process's current randomization key. (The defender knows
// it; attackers must guess.)
func (p *Process) Key() keyspace.Key {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.key
}

// Crashed reports whether the process is dead.
func (p *Process) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// Compromised reports whether an exploit has succeeded against this process.
func (p *Process) Compromised() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compromised
}

// OnCrash registers a hook invoked (once) when the process crashes. This is
// how a netsim connection learns to close — giving the attacker the crash
// oracle of [10, 12].
func (p *Process) OnCrash(fn func()) {
	p.mu.Lock()
	crashed := p.crashed
	if !crashed {
		p.onCrash = append(p.onCrash, fn)
	}
	p.mu.Unlock()
	if crashed {
		fn()
	}
}

// DeliverExploit delivers an exploit crafted for guessedKey. A wrong guess
// crashes the process; the right guess compromises it. Delivering to a
// crashed process returns ErrCrashed.
func (p *Process) DeliverExploit(guessedKey keyspace.Key) (ProbeResult, error) {
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return 0, ErrCrashed
	}
	if guessedKey == p.key {
		p.compromised = true
		p.mu.Unlock()
		return ProbeCompromised, nil
	}
	p.crashed = true
	hooks := p.onCrash
	p.onCrash = nil
	p.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	return ProbeCrashed, nil
}

// Rerandomize installs a new key and clears any compromise: this is the
// reboot + re-randomization step of proactive obfuscation. It also revives a
// crashed process (re-randomization implies a restart).
func (p *Process) Rerandomize(key keyspace.Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.key = key
	p.crashed = false
	p.compromised = false
}

// ForkingDaemon reproduces the forking-server behaviour the paper's attack
// depends on (§2.1): whenever the working child crashes, a new child is
// forked with the current key, silently absorbing crash-causing probes so
// the attacker can keep probing.
type ForkingDaemon struct {
	mu       sync.Mutex
	space    *keyspace.Space
	rng      *xrand.RNG
	key      keyspace.Key
	child    *Process
	respawns uint64
	onCrash  func() // propagated to each new child
}

// NewForkingDaemon starts a daemon whose children all use the given fixed
// key (start-up-only randomization draws it once).
func NewForkingDaemon(space *keyspace.Space, rng *xrand.RNG) *ForkingDaemon {
	d := &ForkingDaemon{space: space, rng: rng, key: space.Draw(rng)}
	d.child = NewProcess(d.key)
	return d
}

// SetCrashObserver registers a hook invoked every time a child crashes; it
// models the attacker-visible connection closure. It must be set before
// probing begins.
func (d *ForkingDaemon) SetCrashObserver(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onCrash = fn
	d.child.OnCrash(fn)
}

// Key returns the key currently baked into children.
func (d *ForkingDaemon) Key() keyspace.Key {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.key
}

// Respawns returns how many children have crashed and been re-forked.
func (d *ForkingDaemon) Respawns() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.respawns
}

// Child returns the currently serving child process.
func (d *ForkingDaemon) Child() *Process {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.child
}

// DeliverExploit delivers an exploit to the current child. If the child
// crashes, the daemon immediately forks a fresh one with the same key —
// which is precisely why paced probing works against SO systems.
func (d *ForkingDaemon) DeliverExploit(guessedKey keyspace.Key) (ProbeResult, error) {
	d.mu.Lock()
	child := d.child
	d.mu.Unlock()

	res, err := child.DeliverExploit(guessedKey)
	if err != nil {
		return 0, err
	}
	if res == ProbeCrashed {
		d.mu.Lock()
		d.respawns++
		d.child = NewProcess(d.key)
		if d.onCrash != nil {
			d.child.OnCrash(d.onCrash)
		}
		d.mu.Unlock()
	}
	return res, nil
}

// Compromised reports whether the current child is attacker-controlled.
func (d *ForkingDaemon) Compromised() bool {
	return d.Child().Compromised()
}

// Rerandomize draws a fresh key and reboots the child with it — one
// proactive-obfuscation period boundary. All attacker knowledge about the
// previous key becomes worthless.
func (d *ForkingDaemon) Rerandomize() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.key = d.space.Draw(d.rng)
	d.child = NewProcess(d.key)
	if d.onCrash != nil {
		d.child.OnCrash(d.onCrash)
	}
}
