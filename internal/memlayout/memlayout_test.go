package memlayout

import (
	"errors"
	"sync"
	"testing"

	"fortress/internal/keyspace"
	"fortress/internal/xrand"
)

func space(t *testing.T, chi uint64) *keyspace.Space {
	t.Helper()
	s, err := keyspace.NewSpace(chi)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProcessWrongKeyCrashes(t *testing.T) {
	p := NewProcess(keyspace.Key(42))
	res, err := p.DeliverExploit(keyspace.Key(41))
	if err != nil {
		t.Fatal(err)
	}
	if res != ProbeCrashed {
		t.Fatalf("result = %v", res)
	}
	if !p.Crashed() {
		t.Fatal("process not crashed")
	}
	if p.Compromised() {
		t.Fatal("crashed process reported compromised")
	}
}

func TestProcessRightKeyCompromises(t *testing.T) {
	p := NewProcess(keyspace.Key(42))
	res, err := p.DeliverExploit(keyspace.Key(42))
	if err != nil {
		t.Fatal(err)
	}
	if res != ProbeCompromised {
		t.Fatalf("result = %v", res)
	}
	if !p.Compromised() || p.Crashed() {
		t.Fatal("compromise state wrong")
	}
}

func TestProcessDeliverToCrashed(t *testing.T) {
	p := NewProcess(keyspace.Key(1))
	if _, err := p.DeliverExploit(keyspace.Key(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeliverExploit(keyspace.Key(1)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
}

func TestOnCrashHookFires(t *testing.T) {
	p := NewProcess(keyspace.Key(9))
	fired := 0
	p.OnCrash(func() { fired++ })
	if _, err := p.DeliverExploit(keyspace.Key(8)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times", fired)
	}
}

func TestOnCrashAfterCrashFiresImmediately(t *testing.T) {
	p := NewProcess(keyspace.Key(9))
	if _, err := p.DeliverExploit(keyspace.Key(8)); err != nil {
		t.Fatal(err)
	}
	fired := false
	p.OnCrash(func() { fired = true })
	if !fired {
		t.Fatal("late hook not fired")
	}
}

func TestRerandomizeClearsEverything(t *testing.T) {
	p := NewProcess(keyspace.Key(5))
	if _, err := p.DeliverExploit(keyspace.Key(5)); err != nil {
		t.Fatal(err)
	}
	if !p.Compromised() {
		t.Fatal("setup failed")
	}
	p.Rerandomize(keyspace.Key(6))
	if p.Compromised() || p.Crashed() {
		t.Fatal("rerandomize did not clear state")
	}
	if p.Key() != 6 {
		t.Fatalf("key = %d", p.Key())
	}
}

func TestForkingDaemonRespawns(t *testing.T) {
	s := space(t, 1<<16)
	d := NewForkingDaemon(s, xrand.New(1))
	key := d.Key()
	// A wrong guess crashes the child, but the daemon forks a new one.
	wrong := keyspace.Key((uint64(key) + 1) % s.Chi())
	res, err := d.DeliverExploit(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if res != ProbeCrashed {
		t.Fatalf("result = %v", res)
	}
	if d.Respawns() != 1 {
		t.Fatalf("respawns = %d", d.Respawns())
	}
	if d.Child().Crashed() {
		t.Fatal("new child should be alive")
	}
	if d.Key() != key {
		t.Fatal("start-up-only daemon must keep its key across respawns")
	}
	// The same correct key then works — that is the SO weakness.
	res, err = d.DeliverExploit(key)
	if err != nil {
		t.Fatal(err)
	}
	if res != ProbeCompromised || !d.Compromised() {
		t.Fatal("correct key did not compromise")
	}
}

func TestForkingDaemonCrashObserver(t *testing.T) {
	s := space(t, 256)
	d := NewForkingDaemon(s, xrand.New(2))
	var mu sync.Mutex
	crashes := 0
	d.SetCrashObserver(func() {
		mu.Lock()
		crashes++
		mu.Unlock()
	})
	key := d.Key()
	for i := 0; i < 5; i++ {
		wrong := keyspace.Key((uint64(key) + 1 + uint64(i)) % s.Chi())
		if _, err := d.DeliverExploit(wrong); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if crashes != 5 {
		t.Fatalf("observed %d crashes, want 5", crashes)
	}
}

func TestForkingDaemonRerandomize(t *testing.T) {
	s := space(t, 1<<16)
	r := xrand.New(3)
	d := NewForkingDaemon(s, r)
	old := d.Key()
	if _, err := d.DeliverExploit(old); err != nil {
		t.Fatal(err)
	}
	if !d.Compromised() {
		t.Fatal("setup failed")
	}
	d.Rerandomize()
	if d.Compromised() {
		t.Fatal("rerandomize left child compromised")
	}
	// The old key almost surely no longer works; assert only the behaviour
	// that must hold: child alive, not compromised.
	if d.Child().Crashed() {
		t.Fatal("fresh child crashed")
	}
}

// Full phase-1 de-randomization against a forking daemon: the attacker must
// find the key within χ probes, because missing probes eliminate candidates
// and the daemon never re-randomizes.
func TestDerandomizationPhase1Completes(t *testing.T) {
	s := space(t, 1024)
	r := xrand.New(4)
	d := NewForkingDaemon(s, r)
	g, err := keyspace.NewGuesser(s, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	probes := uint64(0)
	for !d.Compromised() {
		guess := keyspace.Key(0)
		// Drive the guesser by probing candidates in its order; we need the
		// next candidate, which Probe consumes — emulate by probing the
		// daemon with each candidate until compromise.
		found := false
		for k := uint64(0); k < s.Chi(); k++ {
			if g.Probe(d.Key()) {
				guess = d.Key() // guesser located it; attacker now exploits
				found = true
				break
			}
			probes++
			wrong := keyspace.Key((uint64(d.Key()) + 1) % s.Chi())
			if _, err := d.DeliverExploit(wrong); err != nil {
				t.Fatal(err)
			}
		}
		if !found {
			t.Fatal("guesser exhausted without locating key")
		}
		if _, err := d.DeliverExploit(guess); err != nil {
			t.Fatal(err)
		}
	}
	if probes > s.Chi() {
		t.Fatalf("needed %d probes for χ=%d", probes, s.Chi())
	}
}

func TestConcurrentExploitsSafe(t *testing.T) {
	s := space(t, 64)
	d := NewForkingDaemon(s, xrand.New(9))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				// Errors (racing a crash) are expected and fine; the test is
				// the race detector finding no data races.
				_, _ = d.DeliverExploit(keyspace.Key(uint64(i*100+j) % 64))
			}
		}(i)
	}
	wg.Wait()
}
