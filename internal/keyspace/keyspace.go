// Package keyspace models randomization keys and de-randomization guessing,
// the quantitative heart of the paper's attack model (§2.1, §4.1).
//
// A Space holds χ possible randomization keys (χ = 2¹⁶ for PaX-style ASLR on
// 32-bit machines, the value the paper evaluates). Nodes draw keys from the
// space; an attacker probes candidate keys one at a time. Two guessing
// regimes matter:
//
//   - With replacement (proactive obfuscation, PO): the defender re-draws a
//     fresh key every unit time-step, so knowledge gained in one step is
//     worthless in the next; each step succeeds with a constant probability.
//   - Without replacement (start-up-only obfuscation, SO): the key is fixed,
//     each failed probe permanently eliminates one candidate, and the
//     per-step success probability αᵢ grows with i.
package keyspace

import (
	"fmt"
	"math"

	"fortress/internal/xrand"
)

// Key is a randomization key: an opaque value in [0, χ).
type Key uint64

// Space is a key space of size χ.
type Space struct {
	chi uint64
}

// NewSpace returns a key space with chi possible keys.
func NewSpace(chi uint64) (*Space, error) {
	if chi == 0 {
		return nil, fmt.Errorf("keyspace: χ must be positive")
	}
	return &Space{chi: chi}, nil
}

// Chi returns the number of possible keys χ.
func (s *Space) Chi() uint64 { return s.chi }

// Draw samples a fresh uniformly random key. Re-randomization under PO is
// exactly this: a new independent draw, which may (with probability 1/χ)
// repeat an earlier key — sampling with replacement, as the paper notes.
func (s *Space) Draw(rng *xrand.RNG) Key {
	return Key(rng.Uint64n(s.chi))
}

// Alpha returns the probability that a de-randomization attack with omega
// probes per unit time-step succeeds against a freshly randomized node:
// α = 1 − (1 − 1/χ)^ω for guessing with replacement inside the step; for the
// ω ≪ χ regime the paper works in this is ≈ ω/χ. We use the exact
// without-replacement within-step form ω/χ (probes inside one step never
// repeat a candidate), capped at 1.
func (s *Space) Alpha(omega uint64) float64 {
	if omega >= s.chi {
		return 1
	}
	return float64(omega) / float64(s.chi)
}

// OmegaFor inverts Alpha: the probe budget per step that yields the target
// per-step success probability α against this space. The result is clamped
// to at least 1 probe for any positive α.
func (s *Space) OmegaFor(alpha float64) uint64 {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 {
		return s.chi
	}
	w := uint64(math.Round(alpha * float64(s.chi)))
	if w == 0 {
		w = 1
	}
	return w
}

// AlphaSeq returns the per-step success probabilities α₁..α_n for a
// start-up-only (SO) defender: sampling without replacement with k target
// keys hidden among the remaining candidates and ω probes per step.
//
// For a single target key (k = 1) the exact hypergeometric identity gives
// αᵢ = ω / (χ − (i−1)·ω) while candidates remain, 1 after exhaustion. This
// matches the paper's derivation of αᵢ from αᵢ₋₁ for χ ≫ ω.
func (s *Space) AlphaSeq(omega uint64, steps int) []float64 {
	out := make([]float64, steps)
	for i := 0; i < steps; i++ {
		remaining := float64(s.chi) - float64(i)*float64(omega)
		if remaining <= float64(omega) {
			out[i] = 1
			continue
		}
		out[i] = float64(omega) / remaining
	}
	return out
}

// feistelRounds is the Feistel round count. Four rounds of a strong mixing
// function give candidate orders statistically indistinguishable from a
// uniform shuffle for this package's purposes (the uniform-discovery law the
// SO analysis rests on is pinned by tests).
const feistelRounds = 4

// feistelPerm is a keyed balanced Feistel permutation over the even-bit
// domain [0, 4^halfBits) — bijective for any round function, by
// construction. It is the lazy replacement for a materialized χ-entry
// shuffle: O(1) state, O(1) evaluation, any domain size.
type feistelPerm struct {
	halfBits uint
	halfMask uint64
	keys     [feistelRounds]uint64
}

// newFeistelPerm returns a fresh random permutation over the smallest
// even-bit power of two ≥ n, drawing its round keys from rng.
func newFeistelPerm(n uint64, rng *xrand.RNG) feistelPerm {
	half := uint(1)
	for half < 31 && uint64(1)<<(2*half) < n {
		half++
	}
	f := feistelPerm{halfBits: half, halfMask: uint64(1)<<half - 1}
	for i := range f.keys {
		f.keys[i] = rng.Uint64()
	}
	return f
}

// domain returns the permutation's domain size.
func (f feistelPerm) domain() uint64 { return uint64(1) << (2 * f.halfBits) }

// mix64 is the SplitMix64 finalizer, the round function's mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// apply permutes x within the domain.
func (f feistelPerm) apply(x uint64) uint64 {
	l := x >> f.halfBits
	r := x & f.halfMask
	for _, k := range f.keys {
		l, r = r, l^(mix64(r^k)&f.halfMask)
	}
	return l<<f.halfBits | r
}

// Guesser is a de-randomization phase-1 attacker against one fixed key:
// it enumerates candidate keys in a random order (equivalent to any fixed
// order against a uniform key) and reports when the true key is hit.
//
// The order is a lazy keyed Feistel permutation, cycle-walked over the next
// even-bit power of two ≥ χ: raw indices are walked in sequence and outputs
// ≥ χ discarded, so each candidate in [0, χ) is emitted exactly once with
// O(1) memory — no χ-entry table, which is what lets live campaigns scale to
// χ = 2²⁴ and far beyond.
//
// It tracks probes spent, so the caller can convert to unit time-steps given
// a probe budget ω per step.
type Guesser struct {
	space     *Space
	rng       *xrand.RNG
	perm      feistelPerm
	raw       uint64 // next raw index in [0, perm.domain())
	emitted   uint64 // candidates handed out since the last Reset
	probes    uint64
	exhausted bool
}

// NewGuesser creates a guesser over the space. The candidate order costs
// O(1) memory at any χ; only spaces beyond the Feistel domain bound
// (χ > 2⁶²) are rejected.
func NewGuesser(space *Space, rng *xrand.RNG) (*Guesser, error) {
	const maxChi = uint64(1) << 62
	if space.chi > maxChi {
		return nil, fmt.Errorf("keyspace: guesser supports χ ≤ 2^62, got %d", space.chi)
	}
	return &Guesser{space: space, rng: rng, perm: newFeistelPerm(space.chi, rng)}, nil
}

// Probes returns the number of probes issued so far.
func (g *Guesser) Probes() uint64 { return g.probes }

// Remaining returns the number of candidate keys not yet eliminated.
func (g *Guesser) Remaining() uint64 {
	return g.space.chi - g.emitted
}

// NextCandidate consumes and returns the next untried candidate key,
// counting it as one probe. ok is false once every candidate has been
// tried since the last Reset.
//
// Probe compares internally; NextCandidate hands the candidate to callers
// that must deliver it somewhere themselves (over a network, through a
// proxy) and observe the outcome out-of-band.
func (g *Guesser) NextCandidate() (key Key, ok bool) {
	domain := g.perm.domain()
	for g.raw < domain {
		v := g.perm.apply(g.raw)
		g.raw++
		if v < g.space.chi {
			g.emitted++
			g.probes++
			return Key(v), true
		}
	}
	g.exhausted = true
	return 0, false
}

// Probe issues one probe and reports whether it hit the target key. A miss
// permanently eliminates the probed candidate (the defender never
// re-randomizes in this regime). Probing an exhausted space reports false.
func (g *Guesser) Probe(target Key) bool {
	guess, ok := g.NextCandidate()
	return ok && guess == target
}

// Reset discards eliminated-candidate knowledge, modelling the defender
// re-randomizing: everything the attacker learned becomes useless. The
// enumeration restarts under fresh Feistel keys — a new permutation.
func (g *Guesser) Reset() {
	g.perm = newFeistelPerm(g.space.chi, g.rng)
	g.raw = 0
	g.emitted = 0
	g.exhausted = false
}

// Exhausted reports whether every candidate has been probed without a hit
// since the last Reset (only possible if the target changed mid-phase).
func (g *Guesser) Exhausted() bool { return g.exhausted }
