package keyspace

import (
	"math"
	"testing"
	"testing/quick"

	"fortress/internal/xrand"
)

func mustSpace(t *testing.T, chi uint64) *Space {
	t.Helper()
	s, err := NewSpace(chi)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceRejectsZero(t *testing.T) {
	if _, err := NewSpace(0); err == nil {
		t.Fatal("χ=0 accepted")
	}
}

func TestDrawInRange(t *testing.T) {
	s := mustSpace(t, 1<<16)
	r := xrand.New(1)
	for i := 0; i < 10000; i++ {
		if k := s.Draw(r); uint64(k) >= s.Chi() {
			t.Fatalf("drew key %d outside χ=%d", k, s.Chi())
		}
	}
}

func TestDrawWithReplacement(t *testing.T) {
	// With a tiny space, repeats must occur — sampling with replacement.
	s := mustSpace(t, 4)
	r := xrand.New(2)
	seen := make(map[Key]int)
	for i := 0; i < 100; i++ {
		seen[s.Draw(r)]++
	}
	for k, n := range seen {
		if n < 2 {
			t.Fatalf("key %d drawn only %d times in 100 draws from χ=4", k, n)
		}
	}
}

func TestAlpha(t *testing.T) {
	s := mustSpace(t, 1<<16)
	cases := []struct {
		omega uint64
		want  float64
	}{
		{0, 0},
		{1, 1.0 / 65536},
		{655, 655.0 / 65536},
		{1 << 16, 1},
		{1 << 20, 1},
	}
	for _, c := range cases {
		if got := s.Alpha(c.omega); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Alpha(%d) = %v, want %v", c.omega, got, c.want)
		}
	}
}

func TestOmegaForRoundTrip(t *testing.T) {
	s := mustSpace(t, 1<<16)
	for _, alpha := range []float64{0.00001, 0.0001, 0.001, 0.01} {
		w := s.OmegaFor(alpha)
		if w == 0 {
			t.Fatalf("OmegaFor(%v) = 0", alpha)
		}
		back := s.Alpha(w)
		// Rounding to whole probes can move tiny alphas by up to 1/χ.
		if math.Abs(back-alpha) > 1.0/float64(s.Chi()) {
			t.Errorf("alpha %v -> ω %d -> %v", alpha, w, back)
		}
	}
	if s.OmegaFor(0) != 0 {
		t.Error("OmegaFor(0) should be 0")
	}
	if s.OmegaFor(1.5) != s.Chi() {
		t.Error("OmegaFor(>=1) should be χ")
	}
}

func TestAlphaSeqMonotone(t *testing.T) {
	s := mustSpace(t, 1<<16)
	seq := s.AlphaSeq(100, 500)
	if len(seq) != 500 {
		t.Fatalf("len = %d", len(seq))
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1] {
			t.Fatalf("αᵢ not non-decreasing at %d: %v < %v", i, seq[i], seq[i-1])
		}
	}
	if seq[0] != 100.0/65536 {
		t.Fatalf("α₁ = %v", seq[0])
	}
}

func TestAlphaSeqExhaustion(t *testing.T) {
	s := mustSpace(t, 100)
	seq := s.AlphaSeq(30, 6)
	// Steps: remaining 100, 70, 40 -> alpha 0.3, 3/7, 0.75; then remaining 10 <= 30 -> 1.
	if seq[3] != 1 || seq[4] != 1 {
		t.Fatalf("expected exhaustion to force α=1, got %v", seq)
	}
}

// The hypergeometric identity: expected step of first success under AlphaSeq
// equals (χ/ω + 1)/2 for a uniformly placed key probed ω per step.
func TestAlphaSeqExpectedDiscovery(t *testing.T) {
	s := mustSpace(t, 1000)
	const omega = 10
	seq := s.AlphaSeq(omega, 200)
	expected := 0.0
	survive := 1.0
	for i, a := range seq {
		expected += float64(i+1) * survive * a
		survive *= 1 - a
	}
	want := (1000.0/omega + 1) / 2 // mean of uniform over 100 steps
	if math.Abs(expected-want) > 1e-6*want {
		t.Fatalf("expected discovery step %v, want %v", expected, want)
	}
	if survive > 1e-12 {
		t.Fatalf("survival mass left: %v", survive)
	}
}

func TestGuesserFindsKeyExactlyOnce(t *testing.T) {
	s := mustSpace(t, 256)
	r := xrand.New(3)
	g, err := NewGuesser(s, r)
	if err != nil {
		t.Fatal(err)
	}
	target := s.Draw(r)
	hits := 0
	for i := 0; i < 256; i++ {
		if g.Probe(target) {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("found key %d times in full sweep", hits)
	}
	if g.Probes() != 256 {
		t.Fatalf("probes = %d", g.Probes())
	}
	if g.Remaining() != 0 {
		t.Fatalf("remaining = %d", g.Remaining())
	}
}

func TestGuesserExhaustion(t *testing.T) {
	s := mustSpace(t, 8)
	r := xrand.New(5)
	g, err := NewGuesser(s, r)
	if err != nil {
		t.Fatal(err)
	}
	// Probe against an impossible target (changed key) to exhaust.
	for i := 0; i < 8; i++ {
		g.Probe(Key(1 << 40))
	}
	if g.Exhausted() {
		t.Fatal("Exhausted should only trip on probe past the end")
	}
	if g.Probe(Key(0)) {
		t.Fatal("probe past exhaustion hit")
	}
	if !g.Exhausted() {
		t.Fatal("Exhausted not reported")
	}
}

func TestGuesserReset(t *testing.T) {
	s := mustSpace(t, 64)
	r := xrand.New(7)
	g, err := NewGuesser(s, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		g.Probe(Key(1 << 40))
	}
	if g.Remaining() != 14 {
		t.Fatalf("remaining before reset = %d", g.Remaining())
	}
	g.Reset()
	if g.Remaining() != 64 {
		t.Fatalf("remaining after reset = %d", g.Remaining())
	}
	if g.Probes() != 50 {
		t.Fatalf("reset must not erase probe count, got %d", g.Probes())
	}
}

// The lazy Feistel order removed the old χ ≤ 2²⁴ materialization limit:
// huge spaces construct in O(1) memory and enumerate distinct in-range
// candidates immediately.
func TestGuesserLazyHugeSpace(t *testing.T) {
	s := mustSpace(t, 1<<40)
	g, err := NewGuesser(s, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Key]bool)
	for i := 0; i < 1000; i++ {
		k, ok := g.NextCandidate()
		if !ok {
			t.Fatalf("exhausted after %d candidates", i)
		}
		if uint64(k) >= s.Chi() {
			t.Fatalf("candidate %d outside χ", k)
		}
		if seen[k] {
			t.Fatalf("candidate %d repeated", k)
		}
		seen[k] = true
	}
	if g.Remaining() != s.Chi()-1000 {
		t.Fatalf("remaining = %d", g.Remaining())
	}
	if _, err := NewGuesser(mustSpace(t, uint64(1)<<62+1), xrand.New(1)); err == nil {
		t.Fatal("space beyond the Feistel domain bound accepted")
	}
}

// Every candidate in [0, χ) appears exactly once per pass, including for a
// χ that is not a power of two (the cycle-walking case), and a Reset yields
// a different permutation from the same generator.
func TestGuesserFeistelBijection(t *testing.T) {
	for _, chi := range []uint64{1, 2, 3, 24, 100, 256, 1000} {
		s := mustSpace(t, chi)
		g, err := NewGuesser(s, xrand.New(chi))
		if err != nil {
			t.Fatal(err)
		}
		var first []Key
		seen := make(map[Key]bool)
		for {
			k, ok := g.NextCandidate()
			if !ok {
				break
			}
			if seen[k] {
				t.Fatalf("χ=%d: candidate %d repeated", chi, k)
			}
			seen[k] = true
			first = append(first, k)
		}
		if uint64(len(seen)) != chi {
			t.Fatalf("χ=%d: %d distinct candidates", chi, len(seen))
		}
		g.Reset()
		changed := false
		for i := range first {
			k, ok := g.NextCandidate()
			if !ok {
				t.Fatalf("χ=%d: exhausted early after reset", chi)
			}
			if k != first[i] {
				changed = true
			}
		}
		if chi >= 100 && !changed {
			t.Fatalf("χ=%d: reset did not re-key the permutation", chi)
		}
	}
}

// Property: mean probes to discovery over many runs ≈ (χ+1)/2 — the
// without-replacement uniform-discovery law the SO analysis rests on.
func TestGuesserMeanDiscovery(t *testing.T) {
	s := mustSpace(t, 512)
	r := xrand.New(11)
	const trials = 2000
	var sum float64
	for i := 0; i < trials; i++ {
		g, err := NewGuesser(s, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		target := s.Draw(r)
		for !g.Probe(target) {
		}
		sum += float64(g.Probes())
	}
	mean := sum / trials
	want := (512.0 + 1) / 2
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean discovery probes %v, want ~%v", mean, want)
	}
}

// Property: a guesser never reports more remaining candidates than χ and
// remaining decreases by exactly one per in-range probe.
func TestGuesserRemainingProperty(t *testing.T) {
	prop := func(seed uint16, chiRaw uint8) bool {
		chi := uint64(chiRaw)%200 + 2
		s, err := NewSpace(chi)
		if err != nil {
			return false
		}
		g, err := NewGuesser(s, xrand.New(uint64(seed)))
		if err != nil {
			return false
		}
		prev := g.Remaining()
		if prev != chi {
			return false
		}
		for i := uint64(0); i < chi; i++ {
			g.Probe(Key(1 << 40))
			if g.Remaining() != prev-1 {
				return false
			}
			prev = g.Remaining()
		}
		return prev == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGuesserSweep(b *testing.B) {
	s, err := NewSpace(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	for i := 0; i < b.N; i++ {
		g, err := NewGuesser(s, r.Split())
		if err != nil {
			b.Fatal(err)
		}
		target := s.Draw(r)
		for !g.Probe(target) {
		}
	}
}
