module fortress

go 1.24
